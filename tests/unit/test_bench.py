"""Unit tests for the bench harness helpers."""

from repro.bench import bench_config, format_table
from repro.bench.runners import BUDGET_PER_FAULT


def test_format_table_alignment():
    out = format_table(["A", "Blong"], [["x", 1], ["yy", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("A")
    assert "-" in lines[1]


def test_bench_config_overrides():
    cfg = bench_config("minihdfs2", beam_width=5)
    assert cfg.beam_width == 5
    assert cfg.budget_per_fault == BUDGET_PER_FAULT["minihdfs2"]
    assert cfg.repeats == 3


def test_bench_config_default_budget():
    cfg = bench_config("unknown-system")
    assert cfg.budget_per_fault == 8


# ------------------------------------------------------- campaign benchmark


def test_bench_campaign_smoke(tmp_path):
    import json

    from repro.bench import bench_campaign, check_regression, write_bench_json

    result = bench_campaign(smoke=True, workers=2, backends=("serial", "thread"), overhead=False)
    assert result["system"] == "toy"
    serial = result["backends"]["serial"]
    thread = result["backends"]["thread"]
    assert serial["wall_s"] > 0
    assert thread["identical_to_serial"]
    assert thread["digest"] == serial["digest"]
    assert set(serial["phases"]) == {"analyze", "profile", "allocate", "search", "report"}
    # the code-slice analysis stats ride along for slicer-regression CI
    analysis = result["analysis"]
    assert analysis["functions"] > 0 and analysis["call_edges"] > 0
    assert analysis["wall_total_s"] >= 0 and analysis["reachability_trusted"]

    # The remote_campaign section self-hosts a manager + 2 agent threads
    # and must reproduce the serial digest over the wire, with the fleet's
    # throughput and queue-wait metrics recorded.
    remote = result["remote_campaign"]
    assert remote["backends"]["remote"]["identical_to_serial"]
    assert remote["submit_to_commit_wall_s"] == remote["backends"]["remote"]["wall_s"]
    assert remote["tasks"]["executed"] == remote["tasks"]["total"] > 0
    assert sum(a["tasks_completed"] for a in remote["agents"]) >= remote["tasks"]["total"]
    assert all(a["tasks_per_s"] >= 0 for a in remote["agents"])
    assert remote["queue_wait_s"]["max"] >= remote["queue_wait_s"]["mean"] >= 0

    out = tmp_path / "bench.json"
    write_bench_json(result, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["backends"]["serial"]["wall_s"] == serial["wall_s"]

    # The result never regresses against itself...
    assert check_regression(result, str(out), max_factor=2.0) == []
    # ...and a absurdly fast baseline trips the gate.
    loaded["backends"]["serial"]["wall_s"] = serial["wall_s"] / 100.0
    fast = tmp_path / "fast.json"
    fast.write_text(json.dumps(loaded))
    assert check_regression(result, str(fast), max_factor=2.0)


def test_check_regression_gates_phases(tmp_path):
    import json

    from repro.bench.campaign import PHASE_GATE_FLOOR_S, check_regression

    def entry(wall, phases):
        return {
            "backends": {
                "serial": {
                    "wall_s": wall,
                    "phases": phases,
                    "identical_to_serial": True,
                }
            }
        }

    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(entry(10.0, {"allocate": 2.0, "search": 4.0, "report": 0.1}))
    )

    # A regressed gated phase fails even when total wall stays within bounds.
    result = entry(12.0, {"allocate": 9.0, "search": 4.0, "report": 0.1})
    failures = check_regression(result, str(baseline), max_factor=2.0)
    assert any("allocate" in f for f in failures)
    assert not any("search" in f for f in failures)

    # Ungated phases never fail, however much they regress.
    result = entry(10.0, {"allocate": 2.0, "search": 4.0, "report": 9.0})
    assert check_regression(result, str(baseline), max_factor=2.0) == []

    # Sub-floor times are timer noise: a 100x "regression" under the floor
    # passes, so smoke baselines with ~0.3 ms search phases cannot flake.
    noisy_base = tmp_path / "noisy.json"
    noisy_base.write_text(json.dumps(entry(10.0, {"search": 0.0003})))
    result = entry(10.0, {"search": PHASE_GATE_FLOOR_S * 0.9})
    assert check_regression(result, str(noisy_base), max_factor=2.0) == []
    result = entry(10.0, {"search": PHASE_GATE_FLOOR_S * 1.1})
    assert check_regression(result, str(noisy_base), max_factor=2.0)


def test_profile_campaign_shape():
    from repro.bench.profiling import profile_campaign
    from repro.config import CSnakeConfig

    config = CSnakeConfig(
        repeats=2, delay_values_ms=(500.0,), seed=7, budget_per_fault=1
    )
    phases = profile_campaign("toy", config, top_n=5)
    assert set(phases) == {"analyze", "profile", "allocate", "search", "report"}
    for entry in phases.values():
        assert entry["wall_s"] >= 0
        assert 0 < len(entry["top"]) <= 5
        row = entry["top"][0]
        assert set(row) == {"function", "ncalls", "tottime_s", "cumtime_s"}
        # top is sorted by cumulative time, descending
        cums = [r["cumtime_s"] for r in entry["top"]]
        assert cums == sorted(cums, reverse=True)
        assert entry["collapsed"], "collapsed stacks must not be empty"
        for line in entry["collapsed"]:
            stack, _, value = line.rpartition(" ")
            assert stack and int(value) > 0
    # the hot allocation loop must be named, not guessed at
    allocate_funcs = " ".join(r["function"] for r in phases["allocate"]["top"])
    assert "driver.py" in allocate_funcs or "allocation.py" in allocate_funcs
