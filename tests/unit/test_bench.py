"""Unit tests for the bench harness helpers."""

from repro.bench import bench_config, format_table
from repro.bench.runners import BUDGET_PER_FAULT


def test_format_table_alignment():
    out = format_table(["A", "Blong"], [["x", 1], ["yy", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("A")
    assert "-" in lines[1]


def test_bench_config_overrides():
    cfg = bench_config("minihdfs2", beam_width=5)
    assert cfg.beam_width == 5
    assert cfg.budget_per_fault == BUDGET_PER_FAULT["minihdfs2"]
    assert cfg.repeats == 3


def test_bench_config_default_budget():
    cfg = bench_config("unknown-system")
    assert cfg.budget_per_fault == 8


# ------------------------------------------------------- campaign benchmark


def test_bench_campaign_smoke(tmp_path):
    import json

    from repro.bench import bench_campaign, check_regression, write_bench_json

    result = bench_campaign(smoke=True, workers=2, backends=("serial", "thread"), overhead=False)
    assert result["system"] == "toy"
    serial = result["backends"]["serial"]
    thread = result["backends"]["thread"]
    assert serial["wall_s"] > 0
    assert thread["identical_to_serial"]
    assert thread["digest"] == serial["digest"]
    assert set(serial["phases"]) == {"analyze", "profile", "allocate", "search", "report"}
    # the code-slice analysis stats ride along for slicer-regression CI
    analysis = result["analysis"]
    assert analysis["functions"] > 0 and analysis["call_edges"] > 0
    assert analysis["wall_total_s"] >= 0 and analysis["reachability_trusted"]

    out = tmp_path / "bench.json"
    write_bench_json(result, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["backends"]["serial"]["wall_s"] == serial["wall_s"]

    # The result never regresses against itself...
    assert check_regression(result, str(out), max_factor=2.0) == []
    # ...and a absurdly fast baseline trips the gate.
    loaded["backends"]["serial"]["wall_s"] = serial["wall_s"] / 100.0
    fast = tmp_path / "fast.json"
    fast.write_text(json.dumps(loaded))
    assert check_regression(result, str(fast), max_factor=2.0)
