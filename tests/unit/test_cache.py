"""Tests for the content-addressed experiment cache."""

import argparse
import json

import pytest

from repro.cache import CACHE_SCHEMA, ExperimentCache, result_affecting_config
from repro.cli import _cache_dir
from repro.config import EXECUTION_ONLY_KNOBS, CSnakeConfig
from repro.instrument.plan import InjectionPlan
from repro.instrument.trace import RunGroup, RunTrace
from repro.pipeline import Pipeline
from repro.systems import get_system
from repro.types import FaultKey, InjKind

SMOKE = dict(repeats=2, delay_values_ms=(2000.0,), seed=7, budget_per_fault=2)

FAULT = FaultKey("toy.server.process_batch", InjKind.DELAY)
PLANS = [InjectionPlan(FAULT, delay_ms=2000.0)]


def _campaign(cache_root):
    config = CSnakeConfig(cache_dir=str(cache_root), **SMOKE)
    return Pipeline.default(get_system("toy"), config).run()


def _fingerprint(ctx):
    from repro.serialize import edge_to_obj

    return {
        "report": ctx.get("report").to_dict(),
        "edges": [edge_to_obj(e) for e in ctx.driver.edges.all_edges()],
        "runs": ctx.driver.runs_executed,
        "experiments": ctx.driver.experiments_run,
    }


def test_cold_campaign_fills_warm_campaign_replays(tmp_path, monkeypatch):
    root = tmp_path / "cache"
    cold = _campaign(root)
    stats = cold.driver.cache.stats()
    assert stats["hits"] == 0
    assert stats["misses"] > 0
    assert stats["stores"] == stats["misses"]
    assert len(cold.driver.cache) == stats["stores"]

    # The warm campaign must never simulate: every profile group and every
    # experiment comes out of the store.
    import repro.core.driver as driver_mod

    def _boom(*_a, **_k):  # pragma: no cover - failure path
        raise AssertionError("simulated a run despite a fully warm cache")

    monkeypatch.setattr(driver_mod, "run_workload", _boom)
    warm = _campaign(root)
    warm_stats = warm.driver.cache.stats()
    assert warm_stats["hits"] == stats["stores"]
    assert warm_stats["misses"] == 0
    assert warm_stats["stores"] == 0
    assert _fingerprint(warm) == _fingerprint(cold)


def test_execution_only_knobs_do_not_change_keys(tmp_path):
    spec = get_system("toy")
    base = ExperimentCache(tmp_path, spec, CSnakeConfig(seed=1))
    tweaked = ExperimentCache(
        tmp_path,
        spec,
        CSnakeConfig(
            seed=1,
            experiment_workers=8,
            experiment_backend="process",
            beam_workers=4,
            cache_dir=str(tmp_path),
        ),
    )
    assert base.experiment_key("t", FAULT, PLANS) == tweaked.experiment_key("t", FAULT, PLANS)
    assert base.profile_key("t") == tweaked.profile_key("t")
    for knob in EXECUTION_ONLY_KNOBS:
        assert knob not in result_affecting_config(CSnakeConfig())


def test_result_affecting_changes_miss(tmp_path):
    spec = get_system("toy")
    a = ExperimentCache(tmp_path, spec, CSnakeConfig(seed=1))
    b = ExperimentCache(tmp_path, spec, CSnakeConfig(seed=2))
    c = ExperimentCache(tmp_path, spec, CSnakeConfig(seed=1, repeats=3))
    keys = {x.experiment_key("t", FAULT, PLANS) for x in (a, b, c)}
    assert len(keys) == 3
    # A different plan sweep is a different experiment.
    other_plans = [InjectionPlan(FAULT, delay_ms=100.0)]
    assert a.experiment_key("t", FAULT, PLANS) != a.experiment_key("t", FAULT, other_plans)


def test_spec_structure_and_version_invalidate(tmp_path):
    config = CSnakeConfig(seed=1)
    spec = get_system("toy")
    same = ExperimentCache(tmp_path, get_system("toy"), config)
    base = ExperimentCache(tmp_path, spec, config)
    assert base.experiment_key("t", FAULT, PLANS) == same.experiment_key("t", FAULT, PLANS)

    bumped_spec = get_system("toy")
    bumped_spec.version = "bumped"
    bumped = ExperimentCache(tmp_path, bumped_spec, config)
    assert bumped.experiment_key("t", FAULT, PLANS) != base.experiment_key("t", FAULT, PLANS)

    # Build an independent registry (the bundled toy spec shares one
    # module-level registry instance) and grow it by one site.
    from repro.systems.base import SystemSpec
    from repro.systems.toy import build_registry

    grown_registry = build_registry()
    grown_registry.loop("toy.new.loop", "ToyServer.new_method")
    grown_spec = SystemSpec(name="toy", registry=grown_registry, workloads=spec.workloads)
    grown = ExperimentCache(tmp_path, grown_spec, config)
    assert grown.experiment_key("t", FAULT, PLANS) != base.experiment_key("t", FAULT, PLANS)


def test_workload_sim_config_participates_in_digest(tmp_path):
    """sim_config feeds SimEnv directly, so editing it must invalidate —
    but only the edited test's entries (schema 3 keys embed one workload
    row, not the whole inventory)."""
    from repro.config import SimConfig

    config = CSnakeConfig(seed=1)
    spec = get_system("toy")
    first, second = spec.workload_ids()[:2]
    base = ExperimentCache(tmp_path, spec, config)
    base_key = base.experiment_key(first, FAULT, PLANS)
    other_key = base.experiment_key(second, FAULT, PLANS)
    tweaked = get_system("toy")
    tweaked.workloads[first].sim_config = SimConfig(rpc_timeout_ms=5_000.0)
    tweaked_cache = ExperimentCache(tmp_path, tweaked, config)
    assert tweaked_cache.experiment_key(first, FAULT, PLANS) != base_key
    # Entries of the *untouched* workload survive the edit.
    assert tweaked_cache.experiment_key(second, FAULT, PLANS) == other_key


def test_bench_refuses_prepopulated_cache_dir(tmp_path):
    """The serial bench reference must run cold: a warm store would void
    the speedup columns and the --check regression gate."""
    from repro.bench.campaign import bench_campaign
    from repro.errors import ReproError

    root = tmp_path / "bench-cache"
    entry = root / "ab"
    entry.mkdir(parents=True)
    (entry / "ab123.json").write_text("{}")
    with pytest.raises(ReproError):
        bench_campaign(smoke=True, backends=("serial",), cache_dir=str(root))


def test_corrupt_and_mismatched_entries_read_as_misses(tmp_path):
    spec = get_system("toy")
    cache = ExperimentCache(tmp_path, spec, CSnakeConfig(seed=1))
    group = RunGroup(test_id="t", injection=None)
    group.add(RunTrace(test_id="t", seed=3))
    key = cache.profile_key("t")
    cache.store_profile(key, "t", group)
    assert cache.lookup_profile(key) == group

    # Truncated JSON.
    path = cache._path(key)
    path.write_text("{not json")
    before = (cache.hits, cache.misses)
    assert cache.lookup_profile(key) is None
    assert (cache.hits, cache.misses) == (before[0], before[1] + 1)

    # Wrong kind: an experiment lookup must not deserialize a profile entry.
    cache.store_profile(key, "t", group)
    assert cache.lookup_experiment(key) is None

    # Wrong schema version.
    payload = json.loads(path.read_text())
    payload["schema"] = CACHE_SCHEMA + 1
    path.write_text(json.dumps(payload))
    assert cache.lookup_profile(key) is None


def test_experiment_roundtrip_preserves_runs_counter(tmp_path):
    from repro.core.fca import FcaResult

    spec = get_system("toy")
    cache = ExperimentCache(tmp_path, spec, CSnakeConfig(seed=1))
    result = FcaResult(fault=FAULT, test_id="t", interference=[FAULT])
    key = cache.experiment_key("t", FAULT, PLANS)
    cache.store_experiment(key, "t", FAULT, result, runs=14)
    loaded, runs = cache.lookup_experiment(key)
    assert runs == 14
    assert loaded.fault == result.fault
    assert loaded.interference == result.interference


def test_cli_cache_dir_resolution():
    def ns(**kw):
        base = dict(cache=False, cache_dir=None, no_cache=False, session_dir=None)
        base.update(kw)
        return argparse.Namespace(**base)

    assert _cache_dir(ns()) is None
    assert _cache_dir(ns(cache_dir="/x")) == "/x"
    assert _cache_dir(ns(cache=True)) == ".repro-cache"
    assert _cache_dir(ns(cache=True, session_dir="/s")).endswith("cache")
    assert _cache_dir(ns(cache=True, cache_dir="/x", no_cache=True)) is None


def test_resume_may_override_cache_dir(tmp_path):
    """cache_dir is an execution-only knob: attaching a session with a
    different cache location must not raise a session mismatch."""
    from repro.pipeline import Session

    config = CSnakeConfig(cache_dir=str(tmp_path / "a"), **SMOKE)
    Session.attach(tmp_path / "s", "toy", config)
    reopened = Session.attach(
        tmp_path / "s", "toy", CSnakeConfig(cache_dir=str(tmp_path / "b"), **SMOKE)
    )
    assert reopened.system == "toy"
    with pytest.raises(Exception):
        Session.attach(tmp_path / "s", "toy", CSnakeConfig(seed=999, **{k: v for k, v in SMOKE.items() if k != "seed"}))
