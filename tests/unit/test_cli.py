"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import _config, _parse_delays, _parse_fault, _parse_stages, main
from repro.config import DELAY_VALUES_MS
from repro.types import FaultKey, InjKind


def test_parse_fault():
    assert _parse_fault("a.b:delay") == FaultKey("a.b", InjKind.DELAY)
    assert _parse_fault("x:exception") == FaultKey("x", InjKind.EXCEPTION)


def test_parse_fault_rejects_garbage():
    with pytest.raises(SystemExit):
        _parse_fault("nonsense")
    with pytest.raises(SystemExit):
        _parse_fault("site:banana")


def test_parse_delays():
    assert _parse_delays("250,1000,8000") == (250.0, 1000.0, 8000.0)
    assert _parse_delays("500.5") == (500.5,)
    with pytest.raises(SystemExit):
        _parse_delays("fast,slow")
    with pytest.raises(SystemExit):
        _parse_delays(",")


def test_parse_stages():
    assert _parse_stages("analyze,profile") == ["analyze", "profile"]
    with pytest.raises(SystemExit):
        _parse_stages("analyze,banana")


def test_config_defaults_to_paper_delay_sweep():
    """The CLI must not silently shadow CSnakeConfig defaults."""
    import argparse

    args = argparse.Namespace(budget=None, seed=None, repeats=None, delays=None, parallel=None)
    assert _config(args).delay_values_ms == DELAY_VALUES_MS


def test_config_applies_flags():
    import argparse

    args = argparse.Namespace(budget=3, seed=11, repeats=4, delays="250,8000", parallel=2)
    cfg = _config(args)
    assert cfg.budget_per_fault == 3
    assert cfg.seed == 11
    assert cfg.repeats == 4
    assert cfg.delay_values_ms == (250.0, 8000.0)
    assert cfg.experiment_workers == 2


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "toy" in out and "minihdfs2" in out


def test_list_rejects_experiment_flags():
    with pytest.raises(SystemExit):
        main(["list", "--budget", "3"])
    with pytest.raises(SystemExit):
        main(["list", "--seed", "1"])


def test_inject_command(capsys):
    rc = main([
        "inject", "toy", "toy.server.is_stale:negation", "toy.balancer",
        "--repeats", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "inject" in out


def test_run_command_on_toy(capsys):
    rc = main([
        "run", "toy", "--repeats", "2", "--seed", "7", "--budget", "2",
        "--delays", "2000",
    ])
    out = capsys.readouterr().out
    assert "system: toy" in out
    assert rc in (0, 1)


def test_run_command_json_output(capsys):
    rc = main([
        "run", "toy", "--repeats", "2", "--seed", "7", "--budget", "2",
        "--delays", "2000", "--json",
    ])
    obj = json.loads(capsys.readouterr().out)
    assert obj["system"] == "toy"
    assert "summary" in obj and "bug_matches" in obj
    assert rc in (0, 1)


def test_run_command_out_file(tmp_path, capsys):
    out_file = tmp_path / "report.json"
    main([
        "run", "toy", "--repeats", "2", "--seed", "7", "--budget", "2",
        "--delays", "2000", "--out", str(out_file),
    ])
    capsys.readouterr()
    obj = json.loads(out_file.read_text())
    assert obj["system"] == "toy"


def test_run_partial_stages_reject_json_and_out(tmp_path):
    with pytest.raises(SystemExit):
        main(["run", "toy", "--stages", "analyze", "--json"])
    with pytest.raises(SystemExit):
        main(["run", "toy", "--stages", "analyze", "--out", str(tmp_path / "r.json")])


def test_run_partial_stages(capsys):
    rc = main([
        "run", "toy", "--repeats", "2", "--delays", "2000",
        "--stages", "analyze,profile",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "analysis" in out and "profiles" in out


def test_run_session_then_resume(tmp_path, capsys):
    sdir = tmp_path / "sess"
    args = ["--repeats", "2", "--seed", "7", "--budget", "2", "--delays", "2000"]
    rc_run = main(["run", "toy", "--session-dir", str(sdir)] + args)
    first = capsys.readouterr().out
    rc_resume = main(["resume", str(sdir)])
    second = capsys.readouterr().out
    assert rc_resume == rc_run
    assert first == second  # fully persisted session replays the same report


def test_resume_without_session_errors(tmp_path, capsys):
    rc = main(["resume", str(tmp_path / "missing")])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_run_parallel_matches_serial(tmp_path, capsys):
    args = ["run", "toy", "--repeats", "2", "--seed", "7", "--budget", "2",
            "--delays", "2000", "--json"]
    main(args)
    serial = json.loads(capsys.readouterr().out)
    main(args + ["--parallel", "3"])
    parallel = json.loads(capsys.readouterr().out)
    assert serial == parallel


def test_analyze_command_text(capsys):
    assert main(["analyze", "miniraft"]) == 0
    out = capsys.readouterr().out
    assert "slices:" in out and "fault space:" in out
    # the dead demo site is excluded by the reachability analysis
    assert "statically unreachable from any workload entry point" in out
    # registry entries whose code does not exist stay unresolved (unpruned)
    assert "unresolved raft.sec.cert_check" in out


def test_analyze_command_json(capsys):
    assert main(["analyze", "miniraft", "--json"]) == 0
    obj = json.loads(capsys.readouterr().out)
    assert obj["analysis"]["system"] == "miniraft"
    slices = obj["slices"]
    assert slices["site_digests"] and slices["entry_digests"]
    assert "ldr.compact.scan" not in {f.rsplit(":", 1)[0] for f in obj["analysis"]["faults"]}
    # stats are stable scalars: no wall-clock noise in the JSON form
    assert not any(k.startswith("wall_") for k in slices["stats"])


def test_analyze_env_kinds_change_fault_space(capsys):
    assert main(["analyze", "miniraft", "--fault-kinds", "all", "--json"]) == 0
    obj = json.loads(capsys.readouterr().out)
    assert any(f.endswith(":partition") for f in obj["analysis"]["faults"])


def _edited_tree(tmp_path):
    from pathlib import Path

    from examples.diffrun.edit_miniraft import make_edited_tree

    repo = Path(__file__).resolve().parents[2]
    return str(make_edited_tree(tmp_path / "edited", repo))


def test_diff_run_static_only_json(tmp_path, capsys):
    edited = _edited_tree(tmp_path)
    rc = main(["diff-run", ".", edited, "--system", "miniraft", "--static-only", "--json"])
    obj = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert obj["static"]["source_changed"]
    assert obj["static"]["functions"]["changed"] == [
        "repro.systems.miniraft.nodes:RaftNode.install_snapshot"
    ]
    assert obj["experiments"]["invalidated"] and obj["experiments"]["reusable"]
    assert obj["reports"] is None  # static-only: no campaigns were run


def test_diff_run_static_only_identical_sides(tmp_path, capsys):
    rc = main(["diff-run", ".", ".", "--system", "miniraft", "--static-only", "--json"])
    obj = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert not obj["static"]["source_changed"]
    assert obj["static"]["sites"]["changed"] == []
    # unresolved registry sites are conservatively invalidated even here
    assert set(obj["experiments"]["invalidated"]) <= {"E@raft.sec.cert_check"}


def test_diff_run_rejects_unresolvable_operand(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["diff-run", "no-such-ref-xyz", ".", "--system", "miniraft",
              "--static-only"])
