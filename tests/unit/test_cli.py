"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import _config, _parse_delays, _parse_fault, _parse_stages, main
from repro.config import DELAY_VALUES_MS
from repro.types import FaultKey, InjKind


def test_parse_fault():
    assert _parse_fault("a.b:delay") == FaultKey("a.b", InjKind.DELAY)
    assert _parse_fault("x:exception") == FaultKey("x", InjKind.EXCEPTION)


def test_parse_fault_rejects_garbage():
    with pytest.raises(SystemExit):
        _parse_fault("nonsense")
    with pytest.raises(SystemExit):
        _parse_fault("site:banana")


def test_parse_delays():
    assert _parse_delays("250,1000,8000") == (250.0, 1000.0, 8000.0)
    assert _parse_delays("500.5") == (500.5,)
    with pytest.raises(SystemExit):
        _parse_delays("fast,slow")
    with pytest.raises(SystemExit):
        _parse_delays(",")


def test_parse_stages():
    assert _parse_stages("analyze,profile") == ["analyze", "profile"]
    with pytest.raises(SystemExit):
        _parse_stages("analyze,banana")


def test_config_defaults_to_paper_delay_sweep():
    """The CLI must not silently shadow CSnakeConfig defaults."""
    import argparse

    args = argparse.Namespace(budget=None, seed=None, repeats=None, delays=None, parallel=None)
    assert _config(args).delay_values_ms == DELAY_VALUES_MS


def test_config_applies_flags():
    import argparse

    args = argparse.Namespace(budget=3, seed=11, repeats=4, delays="250,8000", parallel=2)
    cfg = _config(args)
    assert cfg.budget_per_fault == 3
    assert cfg.seed == 11
    assert cfg.repeats == 4
    assert cfg.delay_values_ms == (250.0, 8000.0)
    assert cfg.experiment_workers == 2


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "toy" in out and "minihdfs2" in out


def test_list_rejects_experiment_flags():
    with pytest.raises(SystemExit):
        main(["list", "--budget", "3"])
    with pytest.raises(SystemExit):
        main(["list", "--seed", "1"])


def test_inject_command(capsys):
    rc = main([
        "inject", "toy", "toy.server.is_stale:negation", "toy.balancer",
        "--repeats", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "inject" in out


def test_run_command_on_toy(capsys):
    rc = main([
        "run", "toy", "--repeats", "2", "--seed", "7", "--budget", "2",
        "--delays", "2000",
    ])
    out = capsys.readouterr().out
    assert "system: toy" in out
    assert rc in (0, 1)


def test_run_command_json_output(capsys):
    rc = main([
        "run", "toy", "--repeats", "2", "--seed", "7", "--budget", "2",
        "--delays", "2000", "--json",
    ])
    obj = json.loads(capsys.readouterr().out)
    assert obj["system"] == "toy"
    assert "summary" in obj and "bug_matches" in obj
    assert rc in (0, 1)


def test_run_command_out_file(tmp_path, capsys):
    out_file = tmp_path / "report.json"
    main([
        "run", "toy", "--repeats", "2", "--seed", "7", "--budget", "2",
        "--delays", "2000", "--out", str(out_file),
    ])
    capsys.readouterr()
    obj = json.loads(out_file.read_text())
    assert obj["system"] == "toy"


def test_run_partial_stages_reject_json_and_out(tmp_path):
    with pytest.raises(SystemExit):
        main(["run", "toy", "--stages", "analyze", "--json"])
    with pytest.raises(SystemExit):
        main(["run", "toy", "--stages", "analyze", "--out", str(tmp_path / "r.json")])


def test_run_partial_stages(capsys):
    rc = main([
        "run", "toy", "--repeats", "2", "--delays", "2000",
        "--stages", "analyze,profile",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "analysis" in out and "profiles" in out


def test_run_session_then_resume(tmp_path, capsys):
    sdir = tmp_path / "sess"
    args = ["--repeats", "2", "--seed", "7", "--budget", "2", "--delays", "2000"]
    rc_run = main(["run", "toy", "--session-dir", str(sdir)] + args)
    first = capsys.readouterr().out
    rc_resume = main(["resume", str(sdir)])
    second = capsys.readouterr().out
    assert rc_resume == rc_run
    assert first == second  # fully persisted session replays the same report


def test_resume_without_session_errors(tmp_path, capsys):
    rc = main(["resume", str(tmp_path / "missing")])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_run_parallel_matches_serial(tmp_path, capsys):
    args = ["run", "toy", "--repeats", "2", "--seed", "7", "--budget", "2",
            "--delays", "2000", "--json"]
    main(args)
    serial = json.loads(capsys.readouterr().out)
    main(args + ["--parallel", "3"])
    parallel = json.loads(capsys.readouterr().out)
    assert serial == parallel
