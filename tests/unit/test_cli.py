"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_fault, main
from repro.types import FaultKey, InjKind


def test_parse_fault():
    assert _parse_fault("a.b:delay") == FaultKey("a.b", InjKind.DELAY)
    assert _parse_fault("x:exception") == FaultKey("x", InjKind.EXCEPTION)


def test_parse_fault_rejects_garbage():
    with pytest.raises(SystemExit):
        _parse_fault("nonsense")
    with pytest.raises(SystemExit):
        _parse_fault("site:banana")


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "toy" in out and "minihdfs2" in out


def test_inject_command(capsys):
    rc = main([
        "inject", "toy", "toy.server.is_stale:negation", "toy.balancer",
        "--repeats", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "inject" in out


def test_run_command_on_toy(capsys):
    rc = main(["run", "toy", "--repeats", "2", "--seed", "7", "--budget", "2"])
    out = capsys.readouterr().out
    assert "system: toy" in out
    assert rc in (0, 1)
