"""Unit tests for causally-equivalent fault clustering and SimScore."""

import numpy as np
import pytest

from repro.core.clustering import cluster_faults
from repro.core.simscore import allocation_weight, cluster_sim_scores, fault_sim_scores, sim_score
from repro.types import FaultKey, InjKind


def fk(name):
    return FaultKey(name, InjKind.EXCEPTION)


def test_identical_vectors_cluster_together():
    faults = [fk("a"), fk("b"), fk("c")]
    v = np.array([1.0, 0.0, 0.0])
    w = np.array([0.0, 1.0, 0.0])
    clustering = cluster_faults(faults, [v, v, w], distance_threshold=0.5)
    assert len(clustering) == 2
    assert clustering.by_fault[fk("a")] == clustering.by_fault[fk("b")]
    assert clustering.by_fault[fk("a")] != clustering.by_fault[fk("c")]


def test_all_distinct_vectors_all_singletons():
    faults = [fk("a"), fk("b"), fk("c")]
    vecs = [np.eye(3)[i] for i in range(3)]
    clustering = cluster_faults(faults, vecs, distance_threshold=0.3)
    assert len(clustering) == 3


def test_zero_vectors_cluster_together():
    # Non-impactful injections (empty interference) form one cluster.
    faults = [fk("a"), fk("b"), fk("c")]
    z = np.zeros(3)
    v = np.array([1.0, 0.0, 0.0])
    clustering = cluster_faults(faults, [z, z, v], distance_threshold=0.5)
    assert clustering.by_fault[fk("a")] == clustering.by_fault[fk("b")]


def test_single_fault_single_cluster():
    clustering = cluster_faults([fk("a")], [np.array([1.0])])
    assert len(clustering) == 1
    assert clustering.clusters[0].faults == [fk("a")]


def test_empty_input():
    clustering = cluster_faults([], [])
    assert len(clustering) == 0


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        cluster_faults([fk("a")], [])


def test_cluster_of_lookup():
    faults = [fk("a"), fk("b")]
    clustering = cluster_faults(faults, [np.array([1.0, 0.0]), np.array([0.0, 1.0])], 0.3)
    assert fk("a") in clustering.cluster_of(fk("a"))


class TestSimScore:
    def test_identical_interferences_score_one(self):
        v = np.array([1.0, 0.0])
        assert sim_score([v, v, v]) == pytest.approx(1.0)

    def test_disjoint_interferences_score_zero(self):
        a, b = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert sim_score([a, b]) == pytest.approx(0.0)

    def test_single_observation_score_one(self):
        assert sim_score([np.array([1.0])]) == 1.0

    def test_cluster_scores_grouped_correctly(self):
        faults = [fk("a"), fk("b"), fk("c")]
        va = np.array([1.0, 0.0, 0.0])
        clustering = cluster_faults(faults, [va, va, np.array([0.0, 1.0, 0.0])], 0.5)
        obs = [
            (fk("a"), np.array([1.0, 0.0, 0.0])),
            (fk("b"), np.array([0.0, 0.0, 1.0])),  # conditional consequence
            (fk("c"), np.array([0.0, 1.0, 0.0])),
        ]
        scores = cluster_sim_scores(clustering, obs)
        ab_cluster = clustering.by_fault[fk("a")]
        c_cluster = clustering.by_fault[fk("c")]
        assert scores[ab_cluster] == pytest.approx(0.0)  # orthogonal pair
        assert scores[c_cluster] == pytest.approx(1.0)  # single observation

    def test_fault_scores_inherit_cluster_score(self):
        faults = [fk("a"), fk("b")]
        v = np.array([1.0, 0.0])
        clustering = cluster_faults(faults, [v, v], 0.5)
        scores = cluster_sim_scores(clustering, [(fk("a"), v), (fk("b"), v)])
        per_fault = fault_sim_scores(clustering, scores)
        assert per_fault[fk("a")] == per_fault[fk("b")] == pytest.approx(1.0)


class TestAllocationWeight:
    def test_conditional_cluster_gets_high_weight(self):
        assert allocation_weight(0.0) == 1.0

    def test_unconditional_cluster_gets_epsilon(self):
        assert allocation_weight(1.0) == pytest.approx(0.01)

    def test_mid_scores(self):
        assert allocation_weight(0.3) == pytest.approx(0.7)
