"""Unit tests for the local compatibility check."""

from repro.core.compat import CompatChecker
from repro.types import states_compatible

from tests.helpers import edge, exc, neg, state


class TestStatesCompatible:
    def test_matching_states_compatible(self):
        s = state(("f1", "f0"), (("b1", True),))
        assert states_compatible(frozenset({s}), frozenset({s}))

    def test_different_call_stack_incompatible(self):
        a = state(("f1", "f0"))
        b = state(("g1", "g0"))
        assert not states_compatible(frozenset({a}), frozenset({b}))

    def test_different_branch_trace_incompatible(self):
        a = state(("f1", "f0"), (("b1", True),))
        b = state(("f1", "f0"), (("b1", False),))
        assert not states_compatible(frozenset({a}), frozenset({b}))

    def test_any_pair_matching_suffices(self):
        shared = state(("f1", "f0"), (("b1", True),))
        a = frozenset({state(("x", "y")), shared})
        b = frozenset({shared, state(("p", "q"))})
        assert states_compatible(a, b)

    def test_empty_state_set_is_wildcard(self):
        s = frozenset({state(("f1", "f0"))})
        assert states_compatible(frozenset(), s)
        assert states_compatible(s, frozenset())
        assert states_compatible(frozenset(), frozenset())


class TestCompatChecker:
    def test_fault_mismatch_rejected(self):
        checker = CompatChecker()
        e1 = edge(exc("a"), exc("b"))
        e2 = edge(exc("c"), exc("d"))
        assert not checker.match(e1, e2)
        assert checker.rejected_fault == 1

    def test_fault_match_state_match_accepted(self):
        checker = CompatChecker()
        s = state(("f1", "f0"))
        e1 = edge(exc("a"), exc("b"), dst_states=[s])
        e2 = edge(exc("b"), exc("c"), src_states=[s])
        assert checker.match(e1, e2)

    def test_incompatible_states_rejected(self):
        checker = CompatChecker()
        e1 = edge(exc("a"), exc("b"), dst_states=[state(("f1", "f0"))])
        e2 = edge(exc("b"), exc("c"), src_states=[state(("g1", "g0"))])
        assert not checker.match(e1, e2)
        assert checker.rejected_state == 1

    def test_disabled_checker_ignores_states(self):
        checker = CompatChecker(enabled=False)
        e1 = edge(exc("a"), exc("b"), dst_states=[state(("f1", "f0"))])
        e2 = edge(exc("b"), exc("c"), src_states=[state(("g1", "g0"))])
        assert checker.match(e1, e2)

    def test_disabled_checker_still_requires_fault_match(self):
        checker = CompatChecker(enabled=False)
        assert not checker.match(edge(exc("a"), exc("b")), edge(exc("x"), exc("y")))

    def test_rejection_rate(self):
        checker = CompatChecker()
        s1, s2 = state(("f1", "f0")), state(("g1", "g0"))
        good1 = edge(exc("a"), exc("b"), dst_states=[s1])
        good2 = edge(exc("b"), exc("c"), src_states=[s1])
        bad2 = edge(exc("b"), exc("c"), test_id="t9", src_states=[s2])
        checker.match(good1, good2)
        checker.match(good1, bad2)
        checker.match(good1, edge(exc("z"), exc("w")))
        assert checker.checks == 3
        assert checker.state_rejection_rate == 0.5

    def test_negation_fault_kind_must_match(self):
        checker = CompatChecker()
        e1 = edge(exc("a"), exc("b"))
        e2 = edge(neg("b"), exc("c"))  # same site, different fault kind
        assert not checker.match(e1, e2)


def test_absorb_folds_counters():
    a = CompatChecker()
    a.match(edge(exc("x"), exc("y")), edge(exc("y"), exc("z")))  # pass
    a.match(edge(exc("x"), exc("y")), edge(exc("q"), exc("z")))  # fault reject
    b = CompatChecker()
    s1, s2 = state(("f1", "f0")), state(("g1", "g0"))
    b.match(
        edge(exc("x"), exc("y"), dst_states=[s1]),
        edge(exc("y"), exc("z"), src_states=[s2]),
    )  # state reject
    a.absorb(b)
    assert a.checks == 3
    assert a.rejected_fault == 1
    assert a.rejected_state == 1
    # the absorbed worker-local checker is unchanged
    assert (b.checks, b.rejected_fault, b.rejected_state) == (1, 0, 1)
