"""Unit tests for cycle representation and cycle clustering."""

import numpy as np
import pytest

from repro.core.clustering import cluster_faults
from repro.core.cycles import Cycle, cluster_cycles
from repro.types import EdgeType

from tests.helpers import dly, edge, exc, neg


def cyc(*edges):
    return Cycle(tuple(edges))


def two_cycle(a, b, t1="t1", t2="t2"):
    return cyc(edge(a, b, test_id=t1), edge(b, a, test_id=t2))


def test_signature_counts_injected_kinds():
    c = cyc(
        edge(dly("L"), exc("x"), etype=EdgeType.E_D),
        edge(exc("x"), neg("n"), etype=EdgeType.E_I),
        edge(neg("n"), dly("L"), etype=EdgeType.SP_I),
    )
    assert c.signature() == "1D|1E|1N"


def test_derived_edges_excluded_from_signature():
    c = cyc(
        edge(dly("L2"), dly("L1"), etype=EdgeType.ICFG),
        edge(dly("L1"), dly("L2"), etype=EdgeType.SP_D),
    )
    assert c.signature() == "1D|0E|0N"
    assert c.injected_faults() == [dly("L1")]


def test_canonical_rotation_invariant():
    e1 = edge(exc("a"), exc("b"), test_id="t1")
    e2 = edge(exc("b"), exc("a"), test_id="t2")
    assert cyc(e1, e2).key() == cyc(e2, e1).key()


def test_different_cycles_different_keys():
    assert two_cycle(exc("a"), exc("b")).key() != two_cycle(exc("a"), exc("c")).key()


def test_empty_cycle_rejected():
    with pytest.raises(ValueError):
        Cycle(())


def test_fault_set_and_tests():
    c = two_cycle(exc("a"), exc("b"))
    assert c.fault_set() == frozenset({exc("a"), exc("b")})
    assert c.tests() == ["t1", "t2"]


def test_delay_injections_counted():
    c = cyc(
        edge(dly("L"), exc("x"), etype=EdgeType.E_D),
        edge(exc("x"), dly("L"), etype=EdgeType.SP_I),
    )
    assert c.delay_injections() == 1


class TestCycleClustering:
    def test_cycles_with_equivalent_faults_cluster(self):
        # f_a and f_c are causally equivalent (same cluster).
        faults = [exc("a"), exc("b"), exc("c")]
        v = np.array([1.0, 0.0])
        w = np.array([0.0, 1.0])
        clustering = cluster_faults(faults, [v, w, v], distance_threshold=0.5)
        c1 = two_cycle(exc("a"), exc("b"))
        c2 = two_cycle(exc("c"), exc("b"), t1="t3", t2="t4")
        clusters = cluster_cycles([c1, c2], clustering)
        assert len(clusters) == 1
        assert len(clusters[0]) == 2

    def test_unclustered_faults_are_singletons(self):
        c1 = two_cycle(exc("a"), exc("b"))
        c2 = two_cycle(exc("x"), exc("y"))
        clusters = cluster_cycles([c1, c2], None)
        assert len(clusters) == 2

    def test_representative_is_shortest(self):
        faults = [exc("a"), exc("b")]
        v = np.array([1.0, 0.0])
        clustering = cluster_faults(faults, [v, v], distance_threshold=0.5)
        short = cyc(edge(exc("a"), exc("a")))
        long = two_cycle(exc("a"), exc("b"))
        # Both involve only cluster G0 faults -> same signature? The short
        # one has one injected fault, the long two, so signatures differ.
        clusters = cluster_cycles([short, long], clustering)
        for cluster in clusters:
            assert cluster.representative in cluster.cycles

    def test_str_contains_signature(self):
        c = two_cycle(exc("a"), exc("b"))
        assert "2E" in str(c)
