"""Docs anti-rot tests: the CLI reference must cover every argparse
subcommand and flag, relative markdown links must resolve, and the
tutorial's sample output must match what ``repro list`` actually prints.
"""

import argparse
import re
from pathlib import Path

from repro.cli import build_parser, main

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"

EXPECTED_PAGES = ("architecture.md", "cli.md", "fault-model.md", "adding-a-system.md")


def _subcommands():
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    raise AssertionError("repro parser has no subcommands")


def test_docs_tree_exists_and_is_linked_from_readme():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    for page in EXPECTED_PAGES:
        assert (DOCS / page).is_file(), page
    # Every docs page — expected or later-added — must be discoverable.
    for page in sorted(DOCS.glob("*.md")):
        assert "docs/%s" % page.name in readme, "README does not link docs/%s" % page.name


def test_cli_doc_covers_every_subcommand_and_flag():
    text = (DOCS / "cli.md").read_text(encoding="utf-8")
    subcommands = _subcommands()
    assert subcommands, "no subcommands to document?"
    for name, sub in subcommands.items():
        assert "repro %s" % name in text, "docs/cli.md misses subcommand %r" % name
        for action in sub._actions:
            if action.help == argparse.SUPPRESS:
                continue  # hidden legacy aliases stay undocumented
            for opt in action.option_strings:
                if opt in ("-h", "--help") or not opt.startswith("--"):
                    continue
                assert opt in text, "docs/cli.md misses %s of 'repro %s'" % (opt, name)


def _markdown_files():
    return [REPO / "README.md", REPO / "DESIGN.md"] + sorted(DOCS.glob("*.md"))


LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_relative_markdown_links_resolve():
    for md in _markdown_files():
        for target in LINK_RE.findall(md.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            assert (md.parent / path).exists(), "%s links to missing %s" % (
                md.relative_to(REPO),
                target,
            )


def test_tutorial_list_output_matches_reality(capsys):
    """docs/cli.md and docs/adding-a-system.md embed ``repro list`` output;
    it must match what the command actually prints."""
    assert main(["list"]) == 0
    actual = capsys.readouterr().out.splitlines()
    cli_doc = (DOCS / "cli.md").read_text(encoding="utf-8")
    tutorial = (DOCS / "adding-a-system.md").read_text(encoding="utf-8")
    assert actual, "repro list printed nothing"
    for line in actual:
        assert line.rstrip() in cli_doc, "docs/cli.md list sample is stale: %r" % line
    raft_line = next(line for line in actual if line.startswith("miniraft"))
    assert raft_line.rstrip() in tutorial, "adding-a-system.md miniraft sample is stale"
