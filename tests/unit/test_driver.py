"""Unit tests for the experiment driver, using the toy system."""

import pytest

from repro.config import CSnakeConfig
from repro.core.driver import ExperimentDriver, _seed_for, run_workload
from repro.errors import UnknownSite
from repro.systems.toy import build_system
from repro.types import FaultKey, InjKind

FAST = dict(repeats=2, delay_values_ms=(2000.0,), seed=11)


@pytest.fixture(scope="module")
def spec():
    return build_system()


@pytest.fixture()
def driver(spec):
    return ExperimentDriver(spec, CSnakeConfig(**FAST))


def test_seed_is_stable_and_distinct():
    assert _seed_for("t1", 0, 1) == _seed_for("t1", 0, 1)
    assert _seed_for("t1", 0, 1) != _seed_for("t1", 1, 1)
    assert _seed_for("t1", 0, 1) != _seed_for("t2", 0, 1)
    assert _seed_for("t1", 0, 1) != _seed_for("t1", 0, 2)


def test_run_workload_is_deterministic(spec):
    wl = spec.workloads["toy.big_batches"]
    a = run_workload(spec, wl, None, seed=5)
    b = run_workload(spec, wl, None, seed=5)
    assert a.loop_counts == b.loop_counts
    assert [e.fault for e in a.events] == [e.fault for e in b.events]


def test_different_seeds_may_vary_but_run(spec):
    wl = spec.workloads["toy.big_batches"]
    a = run_workload(spec, wl, None, seed=5)
    b = run_workload(spec, wl, None, seed=6)
    assert a.loop_counts and b.loop_counts


def test_profile_is_cached(driver):
    g1 = driver.profile("toy.idle")
    runs_after_first = driver.runs_executed
    g2 = driver.profile("toy.idle")
    assert g1 is g2
    assert driver.runs_executed == runs_after_first


def test_profile_repeats_match_config(driver):
    group = driver.profile("toy.idle")
    assert len(group) == 2


def test_tests_reaching_uses_profile_coverage(driver):
    # The retry branch site is only reached where clients enable retry.
    reaching = driver.tests_reaching(FaultKey("toy.client.rpc_call", InjKind.EXCEPTION))
    assert "toy.big_batches" in reaching
    assert "toy.retry_clients" in reaching


def test_best_test_prefers_high_coverage(driver):
    fault = FaultKey("toy.server.process_batch", InjKind.DELAY)
    best = driver.best_test_for(fault)
    assert best is not None
    best_cov = driver.coverage_of(best)
    for t in driver.tests_reaching(fault):
        assert best_cov >= driver.coverage_of(t)


def test_unreachable_fault_has_no_best_test(spec):
    driver = ExperimentDriver(spec, CSnakeConfig(**FAST))
    assert driver.best_test_for(FaultKey("toy.nonexistent.site", InjKind.DELAY)) is None


def test_experiment_counts_one_budget_unit(driver):
    fault = FaultKey("toy.server.is_stale", InjKind.NEGATION)
    result = driver.run_experiment(fault, "toy.balancer")
    assert driver.experiments_run == 1
    assert result.fault == fault
    # Negation in the balancer test triggers re-replication -> S+ on the
    # processing loop.
    assert any(f.site_id == "toy.server.process_batch" for f in result.interference)


def test_delay_experiment_sweeps_values(spec):
    cfg = CSnakeConfig(repeats=2, delay_values_ms=(500.0, 8000.0), seed=11)
    driver = ExperimentDriver(spec, cfg)
    driver.profile("toy.big_batches")
    runs_before = driver.runs_executed
    driver.run_experiment(
        FaultKey("toy.server.process_batch", InjKind.DELAY), "toy.big_batches"
    )
    # 2 delay values x 2 repeats.
    assert driver.runs_executed - runs_before == 4
    assert driver.experiments_run == 1


def test_unknown_fault_site_rejected(driver):
    with pytest.raises(UnknownSite):
        driver.run_experiment(FaultKey("toy.bogus", InjKind.EXCEPTION), "toy.idle")


def test_edges_accumulate_in_db(driver):
    driver.run_experiment(FaultKey("toy.server.is_stale", InjKind.NEGATION), "toy.balancer")
    assert len(driver.edges) >= 1


def test_plans_for_is_memoized(driver):
    fault = FaultKey("toy.server.process_batch", InjKind.DELAY)
    first = driver._plans_for(fault)
    assert driver._plans_for(fault) is first  # same list: derived once
    # and the memo is per fault, not global
    other = driver._plans_for(FaultKey("toy.server.is_stale", InjKind.NEGATION))
    assert other is not first
    # memoized plans are what experiments execute: the sweep still runs
    driver.profile("toy.big_batches")
    runs_before = driver.runs_executed
    driver.run_experiment(fault, "toy.big_batches")
    assert driver.runs_executed - runs_before == len(first) * driver.config.repeats
