"""Unit tests for the causal edge database."""

from repro.core.edges import EdgeDB
from repro.types import EdgeType

from tests.helpers import edge, exc, neg, state


def test_add_and_lookup_by_src():
    db = EdgeDB()
    e1 = edge(exc("a"), exc("b"))
    e2 = edge(exc("a"), neg("c"))
    e3 = edge(neg("c"), exc("a"))
    assert db.add(e1) and db.add(e2) and db.add(e3)
    assert set(db.edges_from(exc("a"))) == {e1, e2}
    assert db.edges_from(neg("c")) == [e3]
    assert len(db) == 3


def test_duplicate_edge_not_added():
    db = EdgeDB()
    e = edge(exc("a"), exc("b"))
    assert db.add(e)
    assert not db.add(edge(exc("a"), exc("b")))
    assert len(db) == 1


def test_same_edge_different_test_kept():
    db = EdgeDB()
    db.add(edge(exc("a"), exc("b"), test_id="t1"))
    db.add(edge(exc("a"), exc("b"), test_id="t2"))
    assert len(db) == 2
    assert db.tests() == {"t1", "t2"}


def test_same_edge_different_type_kept():
    db = EdgeDB()
    db.add(edge(exc("a"), exc("b"), etype=EdgeType.E_I))
    db.add(edge(exc("a"), exc("b"), etype=EdgeType.E_D))
    assert len(db) == 2


def test_rediscovery_merges_states():
    db = EdgeDB()
    s1 = state(("f1", "f0"))
    s2 = state(("g1", "g0"))
    db.add(edge(exc("a"), exc("b"), dst_states=[s1]))
    db.add(edge(exc("a"), exc("b"), dst_states=[s2]))
    assert len(db) == 1
    merged = db.edges_from(exc("a"))[0]
    assert merged.dst_states == frozenset({s1, s2})


def test_merged_edge_still_indexed_by_src():
    db = EdgeDB()
    s1, s2 = state(("f1", "f0")), state(("g1", "g0"))
    db.add(edge(exc("a"), exc("b"), src_states=[s1]))
    db.add(edge(exc("a"), exc("b"), src_states=[s2]))
    assert len(db.edges_from(exc("a"))) == 1
    assert db.edges_from(exc("a"))[0].src_states == frozenset({s1, s2})


def test_faults_and_iteration():
    db = EdgeDB()
    db.add_all([edge(exc("a"), exc("b")), edge(exc("b"), exc("c"))])
    assert db.faults() == {exc("a"), exc("b"), exc("c")}
    assert len(list(db)) == 2


def test_add_all_returns_new_count():
    db = EdgeDB()
    e = edge(exc("a"), exc("b"))
    assert db.add_all([e, e, edge(exc("b"), exc("c"))]) == 2
