"""Semantics of the environment fault models against the sim substrate."""

import pytest

from repro.faults import model_for
from repro.faults.environment import ENV_STATE
from repro.instrument.plan import InjectionPlan, make_params
from repro.sim import Node, SimEnv
from repro.systems import get_system
from repro.core.driver import _seed_for, run_workload
from repro.types import FaultKey, InjKind


@pytest.fixture(scope="module")
def spec():
    return get_system("miniraft")


def _run(spec, test_id, plan, seed=None):
    if seed is None:
        seed = _seed_for(test_id, 0, 99)
    return run_workload(spec, spec.workloads[test_id], plan, seed)


def _crash_plan(node, restart_ms, warmup=30_000.0):
    return InjectionPlan(
        FaultKey("env.node.%s" % node, InjKind("node_crash")),
        warmup_ms=warmup,
        params=make_params(restart_ms=restart_ms),
    )


# ------------------------------------------------------------------ recording


def test_env_injection_records_one_injected_event(spec):
    plan = _crash_plan("raft1", restart_ms=20_000.0)
    trace = _run(spec, "raft.steady", plan)
    injected = [e for e in trace.events if e.injected]
    assert len(injected) == 1
    assert injected[0].fault == plan.fault
    assert injected[0].state == ENV_STATE
    assert injected[0].time >= plan.warmup_ms
    assert plan.fault.site_id in trace.reached


def test_env_runs_are_deterministic(spec):
    plan = _crash_plan("raft0", restart_ms=15_000.0)
    a = _run(spec, "raft.steady", plan)
    b = _run(spec, "raft.steady", plan)
    assert a.loop_counts == b.loop_counts
    assert [e.fault for e in a.events] == [e.fault for e in b.events]


# ---------------------------------------------------------------- node crash


def test_crash_without_restart_keeps_node_down(spec):
    # Crashing a follower for good starves the append path for that peer:
    # the leader's AppendEntries to it times out for the rest of the run.
    plan = _crash_plan("raft1", restart_ms=0.0)
    trace = _run(spec, "raft.steady", plan)
    profile = _run(spec, "raft.steady", None)
    rpc_fault = FaultKey("ldr.append.rpc", InjKind.EXCEPTION)
    assert rpc_fault not in profile.natural_faults()
    assert rpc_fault in trace.natural_faults()


def test_crash_with_restart_resumes_replication(spec):
    # A restarted follower answers appends again: strictly more apply work
    # than under a permanent crash (the backlog gets replayed to it).
    down = _run(spec, "raft.steady", _crash_plan("raft1", restart_ms=0.0))
    bounced = _run(spec, "raft.steady", _crash_plan("raft1", restart_ms=20_000.0))
    assert bounced.loop_counts["flw.append.apply"] > down.loop_counts["flw.append.apply"]


def test_restart_hook_rebuilds_periodic_ticks():
    env = SimEnv(seed=1)
    calls = []

    class Ticker(Node):
        def __init__(self):
            super().__init__(env, "t")
            self._tick_registration()

        def _tick_registration(self):
            env.every(self, 1_000.0, lambda: calls.append(env.now))

        def on_restart(self):
            self._tick_registration()

    node = Ticker()
    env.schedule_at(3_500.0, None, node.crash)
    env.schedule_at(6_000.0, None, node.restart)
    env.run(10_000.0)
    assert any(t < 3_500.0 for t in calls)
    assert not any(3_600.0 < t < 6_000.0 for t in calls)  # down while crashed
    assert any(t > 6_500.0 for t in calls)  # ticking again after restart


def test_crash_cancels_ticks_scheduled_beyond_the_restart():
    """A periodic chain whose next tick falls *after* the restart must not
    survive the outage — otherwise it runs alongside the chain that
    ``on_restart`` re-registers, double-rate ticking after recovery."""
    env = SimEnv(seed=1)
    calls = []

    class SlowTicker(Node):
        def __init__(self):
            super().__init__(env, "t")
            self._register()

        def _register(self):
            env.every(self, 35_000.0, lambda: calls.append(env.now))

        def on_restart(self):
            self._register()

    node = SlowTicker()
    env.schedule_at(50_000.0, None, node.crash)   # pending tick sits at ~70s
    env.schedule_at(60_000.0, None, node.restart)
    env.run(400_000.0)
    # Exactly one chain: ticks ~35s apart after restart, never two chains
    # interleaved (which would halve some inter-tick gaps).
    post = [t for t in calls if t > 60_000.0]
    gaps = [b - a for a, b in zip(post, post[1:])]
    assert gaps and all(gap > 30_000.0 for gap in gaps), gaps


# ----------------------------------------------------------------- partition


def test_partition_is_timed_and_heals(spec):
    fault = FaultKey("env.link.raft0~raft1", InjKind("partition"))
    plan = InjectionPlan(fault, warmup_ms=30_000.0, params=make_params(duration_ms=20_000.0))
    trace = _run(spec, "raft.steady", plan)
    profile = _run(spec, "raft.steady", None)
    # During the cut, appends to raft1 time out; after the heal the
    # follower catches back up, so it still applied entries overall.
    assert FaultKey("ldr.append.rpc", InjKind.EXCEPTION) in trace.natural_faults()
    assert trace.loop_counts["flw.append.apply"] > 0
    assert not profile.natural_faults()


def test_partition_names_cut_exactly_one_link():
    env = SimEnv(seed=0)
    a, b, c = Node(env, "a"), Node(env, "b"), Node(env, "c")
    env.partition_names("a", "b")
    assert not env.reachable(a, b)
    assert env.reachable(a, c) and env.reachable(b, c)
    env.heal_names("a", "b")
    assert env.reachable(a, b)


# ------------------------------------------------------------------ msg drop


def test_drop_rule_is_seeded_and_probabilistic():
    dropped = {}
    for seed in (1, 2):
        env = SimEnv(seed=0)
        src, dst = Node(env, "s"), Node(env, "d")
        env.set_drop_rule("s", "d", 0.5, seed)
        delivered = []

        def emit():
            for i in range(200):
                env.send(dst, delivered.append, i)

        env.schedule_at(0.0, src, emit)
        env.run(10_000.0)
        assert 0 < len(delivered) < 200  # probabilistic, not all-or-nothing
        dropped[seed] = tuple(delivered)
    assert dropped[1] != dropped[2]  # seed-dependent ...
    env = SimEnv(seed=0)
    src, dst = Node(env, "s"), Node(env, "d")
    env.set_drop_rule("s", "d", 0.5, 1)
    redelivered = []

    def emit():
        for i in range(200):
            env.send(dst, redelivered.append, i)

    env.schedule_at(0.0, src, emit)
    env.run(10_000.0)
    assert tuple(redelivered) == dropped[1]  # ... and reproducible


def test_drop_rule_draws_from_its_own_rng():
    # A rule on an *unrelated* link must leave the main RNG stream (latency
    # and jitter draws) untouched: drop decisions never consume env.rng.
    # (A drop that fires skips the dropped message's latency draw, exactly
    # like a partitioned send — that is the fault's effect, not leakage.)
    def jitter_stream(with_rule):
        env = SimEnv(seed=42)
        src, dst = Node(env, "s"), Node(env, "d")
        Node(env, "x")
        if with_rule:
            env.set_drop_rule("s", "x", 1.0, 7)
        env.schedule_at(0.0, src, lambda: env.send(dst, lambda: None))
        env.run(100.0)
        return [env.rng.random() for _ in range(5)]

    assert jitter_stream(False) == jitter_stream(True)


def test_arm_rejects_non_env_site(spec):
    model = model_for("partition")
    plan = InjectionPlan(
        FaultKey("env.link.raft0~raft1", InjKind("partition")),
        params=make_params(duration_ms=1_000.0),
    )
    bad = InjectionPlan.__new__(InjectionPlan)  # bypass validation to fake a site
    object.__setattr__(bad, "fault", FaultKey("ldr.append.peers", InjKind("partition")))
    object.__setattr__(bad, "warmup_ms", 0.0)
    object.__setattr__(bad, "params", plan.params)
    object.__setattr__(bad, "delay_ms", None)
    object.__setattr__(bad, "sticky", True)

    class FakeRuntime:
        registry = spec.registry

        class trace:  # noqa: N801 - stand-in namespace
            pass

    with pytest.raises(ValueError, match="not an environment site"):
        model.arm(SimEnv(seed=0), FakeRuntime(), bad)
