"""Serial, thread, and process campaigns must be bit-identical.

A parallel executor only changes *where* experiments execute, never
which experiments run or in which order their results commit — so the
edge DB (including merged local-state sets), every counter, and the final
report must match exactly across all three backends.  The process backend
additionally exercises the picklable task-descriptor path: work items are
rebuilt by name inside worker processes, and profile groups are
recomputed there, which must not change a single bit of the output.
"""

import pytest

from repro.config import CSnakeConfig
from repro.pipeline import Pipeline
from repro.systems import get_system

FAST = dict(repeats=2, delay_values_ms=(500.0, 8000.0), seed=7, budget_per_fault=2)


def _campaign(workers, backend="thread"):
    cfg = CSnakeConfig(
        experiment_workers=workers, experiment_backend=backend, **FAST
    )
    return Pipeline.default(get_system("toy"), cfg).run()


@pytest.fixture(scope="module")
def campaigns():
    return _campaign(1, "serial"), _campaign(3, "thread")


@pytest.fixture(scope="module")
def process_campaign():
    try:
        return _campaign(2, "process")
    except (ImportError, OSError, PermissionError) as exc:
        # Sandboxes without working process pools (no /dev/shm, seccomp)
        # skip rather than fail: the contract is tested where it can run.
        pytest.skip("process backend unavailable: %s" % exc)


def _edge_view(ctx):
    return [
        (e.key(), e.src_states, e.dst_states) for e in ctx.driver.edges.all_edges()
    ]


def test_edge_db_identical(campaigns):
    serial, parallel = campaigns
    assert _edge_view(serial) == _edge_view(parallel)
    assert len(serial.driver.edges) > 0


def test_counters_identical(campaigns):
    serial, parallel = campaigns
    assert serial.driver.runs_executed == parallel.driver.runs_executed
    assert serial.driver.experiments_run == parallel.driver.experiments_run


def test_allocation_schedule_identical(campaigns):
    serial, parallel = campaigns
    a = serial.get("allocation").outcome
    b = parallel.get("allocation").outcome
    assert [(r.phase, r.fault, r.test_id) for r in a.records] == [
        (r.phase, r.fault, r.test_id) for r in b.records
    ]
    assert a.cluster_scores == b.cluster_scores
    assert a.fault_scores == b.fault_scores


def test_report_identical(campaigns):
    serial, parallel = campaigns
    assert serial.get("report").to_dict() == parallel.get("report").to_dict()


def test_process_edge_db_identical(campaigns, process_campaign):
    serial, _ = campaigns
    assert _edge_view(serial) == _edge_view(process_campaign)


def test_process_counters_identical(campaigns, process_campaign):
    serial, _ = campaigns
    assert serial.driver.runs_executed == process_campaign.driver.runs_executed
    assert serial.driver.experiments_run == process_campaign.driver.experiments_run


def test_process_report_identical(campaigns, process_campaign):
    serial, _ = campaigns
    assert serial.get("report").to_dict() == process_campaign.get("report").to_dict()


def test_process_backend_rejects_unregistered_spec():
    from repro.core.driver import ExperimentDriver
    from repro.errors import ReproError
    from repro.systems.base import SystemSpec
    from repro.instrument.sites import SiteRegistry

    spec = SystemSpec(name="not-registered", registry=SiteRegistry("x"))
    driver = ExperimentDriver(spec, CSnakeConfig(**FAST))
    with pytest.raises(ReproError):
        driver._task_system_name()


def test_parallel_profile_cache_identical():
    from repro.core.driver import ExperimentDriver
    from repro.pipeline import ParallelExecutor

    spec = get_system("toy")
    cfg = CSnakeConfig(**FAST)
    serial = ExperimentDriver(spec, cfg)
    serial.profile_all()
    parallel = ExperimentDriver(spec, cfg)
    with ParallelExecutor(4) as pool:
        parallel.profile_all(pool)
    assert serial.runs_executed == parallel.runs_executed
    for test_id, group in serial.profiles().items():
        other = parallel.profiles()[test_id]
        assert group.reached() == other.reached()
        assert [r.loop_counts for r in group.runs] == [r.loop_counts for r in other.runs]
