"""Unit tests for the pluggable fault-model registry (repro.faults)."""

import copy
import pickle

import pytest

from repro.config import CSnakeConfig
from repro.errors import ConfigError
from repro.faults import (
    CLASSIC_FAULT_KINDS,
    EnvFaultPort,
    FaultModel,
    expand_kinds,
    fault_models_digest,
    model_for,
    models_for_site_kind,
    registered_kinds,
    registered_schedules,
)
from repro.instrument.plan import InjectionPlan, make_params
from repro.instrument.sites import SiteRegistry
from repro.types import FaultKey, InjKind, SiteKind, inj_kind_for_site


# ------------------------------------------------------------------ registry


def test_bundled_models_registered_in_order():
    assert registered_kinds() == [
        "exception", "delay", "negation", "node_crash", "partition", "msg_drop",
    ]


def test_model_for_accepts_ids_and_handles():
    assert model_for("delay") is model_for(InjKind.DELAY)
    with pytest.raises(ValueError, match="no fault model registered"):
        model_for("cosmic_ray")


def test_expand_kinds_grammar():
    assert expand_kinds("classic") == CLASSIC_FAULT_KINDS
    assert expand_kinds("all") == tuple(registered_kinds())
    assert expand_kinds("delay, partition") == ("delay", "partition")
    with pytest.raises(ValueError, match="unknown fault kind"):
        expand_kinds("delay,nope")
    with pytest.raises(ValueError):
        expand_kinds("")


def test_models_for_site_kind_link_hosts_two_models():
    kinds = [m.kind_id for m in models_for_site_kind(SiteKind.ENV_LINK)]
    assert kinds == ["partition", "msg_drop"]


def test_fault_models_digest_stable_and_version_sensitive():
    before = fault_models_digest()
    assert before == fault_models_digest()
    model = model_for("partition")
    original = model.version
    try:
        type(model).version = original + ".test"
        assert fault_models_digest() != before
    finally:
        type(model).version = original
    assert fault_models_digest() == before


# ------------------------------------------------------------------- InjKind


def test_injkind_interning_identity_and_lookup():
    assert InjKind("delay") is InjKind.DELAY
    assert InjKind("partition") is InjKind("partition")
    assert InjKind(InjKind.DELAY) is InjKind.DELAY
    with pytest.raises(ValueError, match="not a registered fault kind"):
        InjKind("gamma_burst")


def test_injkind_iteration_covers_registered_kinds():
    # Schedule names are interned InjKinds too (composed fault keys carry
    # them), but live in the schedule registry, not the model registry.
    assert [k.value for k in InjKind] == registered_kinds() + registered_schedules()


def test_injkind_survives_pickle_and_deepcopy():
    for kind in InjKind:
        assert pickle.loads(pickle.dumps(kind)) is kind
        assert copy.deepcopy(kind) is kind
    key = FaultKey("env.node.n1", InjKind("node_crash"))
    clone = pickle.loads(pickle.dumps(key))
    assert clone == key and clone.kind is key.kind


def test_primary_kind_for_env_site_kinds():
    assert inj_kind_for_site(SiteKind.ENV_NODE) is InjKind("node_crash")
    assert inj_kind_for_site(SiteKind.ENV_LINK) is InjKind("partition")
    with pytest.raises(ValueError, match="monitor-only"):
        inj_kind_for_site(SiteKind.BRANCH)


# ----------------------------------------------------------- plan validation


def test_delay_plan_requires_delay_ms_via_is_none_check():
    fault = FaultKey("x.loop", InjKind.DELAY)
    with pytest.raises(ValueError, match="requires delay_ms"):
        InjectionPlan(fault)
    with pytest.raises(ValueError, match="positive"):
        InjectionPlan(fault, delay_ms=0.0)  # zero is a no-op, not "missing"
    assert InjectionPlan(fault, delay_ms=1.0).delay_ms == 1.0


def test_non_delay_plan_rejects_zero_delay_ms():
    # The old truthiness check (`if self.delay_ms`) silently accepted a
    # 0.0 delay on exception/negation plans; `is None` validation rejects
    # every non-None value.
    for fault in (
        FaultKey("a.throw", InjKind.EXCEPTION),
        FaultKey("a.det", InjKind.NEGATION),
    ):
        with pytest.raises(ValueError, match="only applies to delay"):
            InjectionPlan(fault, delay_ms=0.0)
        with pytest.raises(ValueError, match="only applies to delay"):
            InjectionPlan(fault, delay_ms=250.0)
        assert InjectionPlan(fault).delay_ms is None


def test_env_plan_param_validation():
    crash = FaultKey("env.node.n1", InjKind("node_crash"))
    with pytest.raises(ValueError, match="requires parameter"):
        InjectionPlan(crash)
    with pytest.raises(ValueError, match="does not take parameter"):
        InjectionPlan(crash, params=make_params(restart_ms=1.0, extra=2.0))
    with pytest.raises(ValueError, match=">= 0"):
        InjectionPlan(crash, params=make_params(restart_ms=-5.0))
    plan = InjectionPlan(crash, params=make_params(restart_ms=0.0))
    assert plan.param("restart_ms") == 0.0

    part = FaultKey("env.link.a~b", InjKind("partition"))
    with pytest.raises(ValueError, match="positive"):
        InjectionPlan(part, params=make_params(duration_ms=0.0))

    drop = FaultKey("env.link.a~b", InjKind("msg_drop"))
    with pytest.raises(ValueError, match="in \\(0, 1\\]"):
        InjectionPlan(drop, params=make_params(drop_p=1.5))
    assert InjectionPlan(drop, params=make_params(drop_p=1.0)).param("drop_p") == 1.0


def test_plan_params_normalized_sorted():
    part = FaultKey("env.link.a~b", InjKind("partition"))
    plan = InjectionPlan(part, params=(("duration_ms", 5.0),))
    assert plan.params == (("duration_ms", 5.0),)


# ---------------------------------------------------------------- plan sweeps


def test_model_plan_sweeps_match_config():
    config = CSnakeConfig(delay_values_ms=(100.0, 200.0))
    delay_plans = model_for("delay").plans_for(FaultKey("l", InjKind.DELAY), config)
    assert [p.delay_ms for p in delay_plans] == [100.0, 200.0]
    crash_plans = model_for("node_crash").plans_for(
        FaultKey("env.node.n", InjKind("node_crash")), config
    )
    assert [p.param("restart_ms") for p in crash_plans] == list(
        config.crash_restart_values_ms
    )
    assert all(p.warmup_ms == config.injection_warmup_ms for p in crash_plans)


def test_sweep_overrides_respected_by_models():
    config = CSnakeConfig(sweep_overrides=(("partition", (7_500.0,)),))
    plans = model_for("partition").plans_for(
        FaultKey("env.link.a~b", InjKind("partition")), config
    )
    assert [p.param("duration_ms") for p in plans] == [7_500.0]


# --------------------------------------------------------------- config knobs


def test_config_rejects_unknown_fault_kinds():
    with pytest.raises(ConfigError, match="unknown fault kind"):
        CSnakeConfig(fault_kinds=("delay", "nope"))
    with pytest.raises(ConfigError, match="at least one"):
        CSnakeConfig(fault_kinds=())
    with pytest.raises(ConfigError, match="unknown fault kind"):
        CSnakeConfig(sweep_overrides=(("nope", (1.0,)),))


def test_config_rejects_out_of_range_sweep_overrides():
    """Bad --sweep values fail at config time, not mid-campaign."""
    with pytest.raises(ConfigError, match="finite and positive"):
        CSnakeConfig(sweep_overrides=(("delay", (-5.0,)),))
    with pytest.raises(ConfigError, match="finite and positive"):
        CSnakeConfig(sweep_overrides=(("partition", (float("nan"),)),))
    with pytest.raises(ConfigError, match="in \\(0, 1\\]"):
        CSnakeConfig(sweep_overrides=(("msg_drop", (1.5,)),))
    # node_crash allows 0 (= never restart) but not negatives.
    CSnakeConfig(sweep_overrides=(("node_crash", (0.0,)),))
    with pytest.raises(ConfigError, match=">= 0"):
        CSnakeConfig(sweep_overrides=(("node_crash", (-1.0,)),))


def test_config_roundtrip_with_fault_knobs():
    config = CSnakeConfig(
        fault_kinds=("delay", "partition"),
        sweep_overrides=(("partition", (10_000.0, 30_000.0)),),
    )
    clone = CSnakeConfig.from_dict(
        __import__("json").loads(__import__("json").dumps(config.to_dict()))
    )
    assert clone == config


# -------------------------------------------------------------- EnvFaultPort


def test_env_fault_port_registers_sites():
    port = EnvFaultPort(nodes=("n1",), links=(("b", "a"),))
    reg = SiteRegistry("sys")
    port.register_sites(reg)
    port.register_sites(reg)  # idempotent
    assert len(reg) == 2
    node_site = reg.get("env.node.n1")
    assert node_site.kind is SiteKind.ENV_NODE and node_site.env.node == "n1"
    link_site = reg.get("env.link.a~b")  # pair is normalized sorted
    assert link_site.kind is SiteKind.ENV_LINK and link_site.env.link == ("a", "b")
    assert {f.kind.value for f in link_site.fault_keys()} == {"partition", "msg_drop"}
    assert node_site.fault_key == FaultKey("env.node.n1", InjKind("node_crash"))


def test_env_fault_port_rejects_self_links():
    with pytest.raises(ValueError, match="distinct nodes"):
        EnvFaultPort(links=(("a", "a"),))


# ------------------------------------------------------------ custom plugins


def test_registering_a_custom_model_is_self_contained():
    from repro.faults import register

    class RestartStorm(FaultModel):
        kind_id = "test_restart_storm"
        char = "R"
        site_kinds = (SiteKind.ENV_NODE,)
        param_names = ("period_ms",)

        def plans_for(self, fault, config):
            return [
                InjectionPlan(
                    fault,
                    warmup_ms=config.injection_warmup_ms,
                    params=make_params(period_ms=5_000.0),
                )
            ]

    digest_before = fault_models_digest()
    try:
        register(RestartStorm())
        assert InjKind("test_restart_storm").value == "test_restart_storm"
        assert model_for("test_restart_storm").char == "R"
        assert "test_restart_storm" in expand_kinds("all")
        assert fault_models_digest() != digest_before
        fault = FaultKey("env.node.n1", InjKind("test_restart_storm"))
        plan = model_for("test_restart_storm").plans_for(fault, CSnakeConfig())[0]
        assert plan.param("period_ms") == 5_000.0
    finally:
        from repro.faults import _MODELS

        _MODELS.pop("test_restart_storm", None)
