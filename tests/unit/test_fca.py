"""Unit tests for fault causality analysis on synthetic run groups."""

import pytest

from repro.config import CSnakeConfig
from repro.core.fca import FaultCausalityAnalysis
from repro.instrument import InjectionPlan, SiteRegistry
from repro.types import EdgeType

from tests.helpers import dly, event, exc, group, neg, run_trace, state


@pytest.fixture
def registry():
    reg = SiteRegistry("toy")
    reg.loop("L1", "F.run")
    reg.loop("L2", "F.run", parent="L1", order=0)
    reg.loop("L3", "F.run", parent="L1", order=1)
    reg.throw("X", "F.step")
    reg.detector("N", "F.check")
    return reg


@pytest.fixture
def config():
    return CSnakeConfig(repeats=3, point_event_min_frac=0.4)


def make_fca(registry, config):
    return FaultCausalityAnalysis(registry, config)


def profile_group(test_id="t1", reps=3, loop_counts=None, events_fn=None):
    runs = []
    for i in range(reps):
        runs.append(
            run_trace(
                test_id=test_id,
                events=events_fn(i) if events_fn else (),
                loop_counts=loop_counts or {},
            )
        )
    return group(test_id, None, runs)


def test_additional_exception_creates_ei_edge(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(neg("N"))
    profile = profile_group()
    injection = group(
        "t1",
        plan,
        [
            run_trace("t1", plan, events=[event(exc("X")), event(neg("N"), injected=True)])
            for _ in range(3)
        ],
    )
    result = fca.analyze(profile, injection)
    assert exc("X") in result.interference
    edges = [e for e in result.edges if e.dst == exc("X")]
    assert len(edges) == 1
    assert edges[0].etype is EdgeType.E_I
    assert edges[0].src == neg("N")


def test_delay_injection_gives_ed_edge_type(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(dly("L1"), delay_ms=100.0)
    profile = profile_group(loop_counts={"L1": 10})
    injection = group(
        "t1",
        plan,
        [run_trace("t1", plan, events=[event(exc("X"))], loop_counts={"L1": 10}) for _ in range(3)],
    )
    result = fca.analyze(profile, injection)
    edges = [e for e in result.edges if e.dst == exc("X")]
    assert edges and edges[0].etype is EdgeType.E_D


def test_fault_present_in_profile_is_not_counterfactual(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(neg("N"))
    profile = profile_group(events_fn=lambda i: [event(exc("X"))] if i == 0 else [])
    injection = group(
        "t1", plan, [run_trace("t1", plan, events=[event(exc("X"))]) for _ in range(3)]
    )
    result = fca.analyze(profile, injection)
    assert exc("X") not in result.interference


def test_rare_fault_below_threshold_ignored(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(neg("N"))
    profile = profile_group()
    # Occurs in 1 of 3 runs = 0.33 < 0.4 threshold.
    injection = group(
        "t1",
        plan,
        [run_trace("t1", plan, events=[event(exc("X"))] if i == 0 else []) for i in range(3)],
    )
    result = fca.analyze(profile, injection)
    assert exc("X") not in result.interference


def test_loop_increase_gives_sp_edge(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(neg("N"))
    profile = profile_group(loop_counts={"L1": 10})
    injection = group(
        "t1", plan, [run_trace("t1", plan, loop_counts={"L1": 30}) for _ in range(3)]
    )
    result = fca.analyze(profile, injection)
    assert dly("L1") in result.interference
    edges = [e for e in result.edges if e.dst == dly("L1")]
    assert edges[0].etype is EdgeType.SP_I


def test_loop_unchanged_no_edge(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(neg("N"))
    profile = profile_group(loop_counts={"L1": 10})
    injection = group(
        "t1", plan, [run_trace("t1", plan, loop_counts={"L1": 10}) for _ in range(3)]
    )
    result = fca.analyze(profile, injection)
    assert dly("L1") not in result.interference


def test_loop_decrease_no_edge(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(neg("N"))
    profile = profile_group(loop_counts={"L1": 30})
    injection = group(
        "t1", plan, [run_trace("t1", plan, loop_counts={"L1": 10}) for _ in range(3)]
    )
    result = fca.analyze(profile, injection)
    assert dly("L1") not in result.interference


def test_nested_loop_expansion_icfg_and_cfg(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(neg("N"))
    profile = profile_group(loop_counts={"L1": 5, "L2": 10, "L3": 5})
    injection = group(
        "t1",
        plan,
        [
            run_trace("t1", plan, loop_counts={"L1": 5, "L2": 40, "L3": 5})
            for _ in range(3)
        ],
    )
    result = fca.analyze(profile, injection)
    icfg = [e for e in result.edges if e.etype is EdgeType.ICFG]
    cfg = [e for e in result.edges if e.etype is EdgeType.CFG]
    assert len(icfg) == 1
    assert icfg[0].src == dly("L2") and icfg[0].dst == dly("L1")
    assert len(cfg) == 1
    assert cfg[0].src == dly("L1") and cfg[0].dst == dly("L3")


def test_cfg_expansion_skips_unreached_siblings(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(neg("N"))
    profile = profile_group(loop_counts={"L1": 5, "L2": 10})
    injection = group(
        "t1", plan, [run_trace("t1", plan, loop_counts={"L1": 5, "L2": 40}) for _ in range(3)]
    )
    result = fca.analyze(profile, injection)
    cfg = [e for e in result.edges if e.etype is EdgeType.CFG]
    assert cfg == []  # L3 never reached in the injection runs


def test_top_level_loop_has_no_expansion(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(neg("N"))
    profile = profile_group(loop_counts={"L1": 5})
    injection = group(
        "t1", plan, [run_trace("t1", plan, loop_counts={"L1": 50}) for _ in range(3)]
    )
    result = fca.analyze(profile, injection)
    assert all(e.etype not in (EdgeType.ICFG, EdgeType.CFG) for e in result.edges)


def test_dst_states_collected_from_injection_runs(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(neg("N"))
    st = state(("F.caller", "F.main"), (("b1", True),))
    profile = profile_group()
    injection = group(
        "t1", plan, [run_trace("t1", plan, events=[event(exc("X"), st=st)]) for _ in range(3)]
    )
    result = fca.analyze(profile, injection)
    assert result.edges[0].dst_states == frozenset({st})


def test_mismatched_tests_rejected(registry, config):
    fca = make_fca(registry, config)
    plan = InjectionPlan(neg("N"))
    profile = profile_group(test_id="t1")
    injection = group("t2", plan, [run_trace("t2", plan)])
    with pytest.raises(ValueError):
        fca.analyze(profile, injection)


def test_profile_as_injection_rejected(registry, config):
    fca = make_fca(registry, config)
    profile = profile_group()
    with pytest.raises(ValueError):
        fca.analyze(profile, profile)


def test_self_edge_allowed_for_natural_reoccurrence(registry, config):
    """An injected exception whose natural re-occurrence follows (retry
    hitting the same throw point) yields a self-edge — a 1-cycle."""
    fca = make_fca(registry, config)
    plan = InjectionPlan(exc("X"))
    profile = profile_group()
    injection = group(
        "t1",
        plan,
        [
            run_trace(
                "t1",
                plan,
                events=[event(exc("X"), injected=True), event(exc("X"), at=2.0)],
            )
            for _ in range(3)
        ],
    )
    result = fca.analyze(profile, injection)
    self_edges = [e for e in result.edges if e.src == exc("X") and e.dst == exc("X")]
    assert len(self_edges) == 1
