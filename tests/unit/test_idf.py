"""Unit tests for IDF vectorization and cosine distance (§A.1)."""

import math

import numpy as np
import pytest

from repro.core.idf import IdfVectorizer, cosine_distance, mean_pairwise_distance
from repro.types import FaultKey, InjKind


def fk(name):
    return FaultKey(name, InjKind.EXCEPTION)


CORPUS = [fk("a"), fk("b"), fk("c"), fk("d")]


def test_idf_formula_matches_paper():
    vec = IdfVectorizer(CORPUS)
    # 4 experiments; "a" appears in all 4, "b" in 1.
    docs = [[fk("a")], [fk("a"), fk("b")], [fk("a")], [fk("a")]]
    vec.fit(docs)
    assert vec.idf_of(fk("a")) == pytest.approx(math.log(5 / 5))
    assert vec.idf_of(fk("b")) == pytest.approx(math.log(5 / 2))
    assert vec.idf_of(fk("c")) == pytest.approx(math.log(5 / 1))


def test_ubiquitous_fault_contributes_nothing():
    vec = IdfVectorizer(CORPUS).fit([[fk("a")], [fk("a"), fk("b")], [fk("a"), fk("c")]])
    v1 = vec.vectorize([fk("a"), fk("b")])
    v2 = vec.vectorize([fk("a"), fk("c")])
    # "a" occurs everywhere -> IDF log(4/4)=0, so the vectors are orthogonal.
    assert cosine_distance(v1, v2) == pytest.approx(1.0)


def test_vectors_are_l2_normalised():
    vec = IdfVectorizer(CORPUS).fit([[fk("b")], [fk("c")], [fk("d")]])
    v = vec.vectorize([fk("b"), fk("c")])
    assert np.linalg.norm(v) == pytest.approx(1.0)


def test_empty_interference_gives_zero_vector():
    vec = IdfVectorizer(CORPUS).fit([[fk("b")], []])
    v = vec.vectorize([])
    assert np.linalg.norm(v) == 0.0


def test_unknown_faults_ignored():
    vec = IdfVectorizer(CORPUS).fit([[fk("b")]])
    v = vec.vectorize([fk("zzz")])
    assert np.linalg.norm(v) == 0.0


def test_vectorize_before_fit_raises():
    vec = IdfVectorizer(CORPUS)
    with pytest.raises(RuntimeError):
        vec.vectorize([fk("a")])


def test_empty_corpus_rejected():
    with pytest.raises(ValueError):
        IdfVectorizer([])


class TestCosineDistance:
    def test_identical_vectors_distance_zero(self):
        v = np.array([1.0, 2.0, 0.0])
        assert cosine_distance(v, v) == pytest.approx(0.0)

    def test_orthogonal_vectors_distance_one(self):
        assert cosine_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_two_empty_vectors_distance_zero(self):
        z = np.zeros(3)
        assert cosine_distance(z, z) == 0.0

    def test_empty_vs_nonempty_distance_one(self):
        assert cosine_distance(np.zeros(2), np.array([1.0, 0.0])) == 1.0

    def test_range_clamped_to_unit_interval(self):
        a = np.array([1.0, 1.0])
        b = np.array([1.0, 0.999999])
        d = cosine_distance(a, b)
        assert 0.0 <= d <= 1.0


class TestMeanPairwise:
    def test_single_vector_zero(self):
        assert mean_pairwise_distance([np.array([1.0, 0.0])]) == 0.0

    def test_identical_pair_zero(self):
        v = np.array([0.5, 0.5])
        assert mean_pairwise_distance([v, v]) == pytest.approx(0.0)

    def test_mixed_average(self):
        a, b = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        # pairs: (a,a)=0, (a,b)=1, (a,b)=1 -> mean 2/3
        assert mean_pairwise_distance([a, a, b]) == pytest.approx(2.0 / 3.0)
