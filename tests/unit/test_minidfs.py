"""Unit tests for the MiniDFS replicated-filesystem target."""

import pytest

from repro.config import CSnakeConfig
from repro.core.driver import ExperimentDriver, _seed_for, run_workload
from repro.instrument.analyzer import analyze
from repro.pipeline import Pipeline
from repro.systems import get_system
from repro.systems.minidfs.nodes import DfsConfig
from repro.types import FaultKey, InjKind

#: Reduced configuration used by every campaign-shaped test here: the
#: same knobs the designated-experiment probes and CI smoke use.
SMOKE = dict(repeats=2, delay_values_ms=(500.0, 8000.0), seed=7, budget_per_fault=2)


@pytest.fixture(scope="module")
def spec():
    return get_system("minidfs")


def test_registry_and_ground_truth(spec):
    assert len(spec.registry) == 45  # 35 code sites + 4 node + 6 link env sites
    assert len(spec.registry.env_sites()) == 10
    assert len(spec.workloads) == 7
    assert [b.bug_id for b in spec.known_bugs] == [
        "DFS-1", "DFS-2", "DFS-3", "DFS-4",
    ]
    for bug in spec.known_bugs:
        for fault in bug.core_faults | bug.trigger_faults:
            assert fault.site_id in spec.registry, bug.bug_id
    # Each bug is gated on a *different* disturbance class: a single node
    # crash, a link partition, a rolling crash/restart schedule, and
    # datagram loss.
    gates = {
        "DFS-1": "node_crash",
        "DFS-2": "partition",
        "DFS-3": "membership_churn",
        "DFS-4": "msg_drop",
    }
    for bug_id, kind in gates.items():
        bug = spec.bug(bug_id)
        assert bug.trigger_faults, bug_id
        assert all(f.kind is InjKind(kind) for f in bug.trigger_faults), bug_id


def test_fault_space_excludes_filtered_sites(spec):
    result = analyze(spec.registry, slices=spec.slice_analysis())
    selected = {f.site_id for f in result.faults}
    assert "nn.metrics.flush" not in selected  # constant bound
    assert "dn.conf.is_cached" not in selected  # final-only detector
    assert "dfs.sec.acl_check" not in selected  # security-related
    assert "nn.fsck.scan" not in selected  # dead code: no reachable caller
    assert "dn.ibr.build" not in selected  # bottom-decile non-IO loop body
    assert "nn.report.blocks" in selected
    assert "dn.master.is_down" in selected
    assert "nn.rerepl.rpc" in selected


def test_profiles_deterministic_and_fault_free(spec):
    """Fault-free runs are reproducible and counterfactually clean: none
    of the faults the seeded bugs' cycles are built from occur naturally."""
    bug_faults = set()
    for bug in spec.known_bugs:
        bug_faults |= set(bug.core_faults)
    for test_id in spec.workload_ids():
        wl = spec.workloads[test_id]
        a = run_workload(spec, wl, None, _seed_for(test_id, 0, 99))
        b = run_workload(spec, wl, None, _seed_for(test_id, 0, 99))
        assert a.loop_counts == b.loop_counts, test_id
        assert not a.saturated, test_id
        assert not (a.natural_faults() & bug_faults), test_id


def test_scripted_drills_have_expected_natural_faults(spec):
    """The crash/handover drills produce exactly the environment-churn
    naturals they are scripted to produce — and nothing else.  A new
    natural fault in a drill profile means the drill's timing drifted."""
    expected = {
        "dfs.write": set(),
        "dfs.read": set(),
        "dfs.hb_storm": set(),
        "dfs.idle": set(),
        # dn2 stays crashed: pipeline writes into it fail until the
        # re-replication drill restores the factor.
        "dfs.replicate": {
            FaultKey("cli.data.rpc", InjKind.EXCEPTION),
            FaultKey("dn.pipe.rpc", InjKind.EXCEPTION),
            FaultKey("nn.block.is_under", InjKind.NEGATION),
            FaultKey("nn.dn.is_dead", InjKind.NEGATION),
        },
        # The handover demotes nn0: in-flight registrations and writes
        # against the old master are refused, and the demoted master's
        # stale liveness view expires its heartbeat table.
        "dfs.failover": {
            FaultKey("dn.reg.rpc", InjKind.EXCEPTION),
            FaultKey("nn.write.not_master", InjKind.EXCEPTION),
            FaultKey("nn.dn.is_dead", InjKind.NEGATION),
        },
        # dn1's crash window: pipeline writes into it fail until restart,
        # and the liveness scan queues its blocks for re-replication.
        "dfs.churn": {
            FaultKey("cli.data.rpc", InjKind.EXCEPTION),
            FaultKey("dn.pipe.rpc", InjKind.EXCEPTION),
            FaultKey("nn.block.is_under", InjKind.NEGATION),
            FaultKey("nn.dn.is_dead", InjKind.NEGATION),
        },
    }
    always = {FaultKey("dn.conf.is_cached", InjKind.NEGATION)}
    for test_id, want in expected.items():
        wl = spec.workloads[test_id]
        trace = run_workload(spec, wl, None, _seed_for(test_id, 0, 7))
        assert trace.natural_faults() - always == want, test_id


def test_bug_core_faults_reachable_somewhere(spec):
    reached = set()
    for test_id in spec.workload_ids():
        wl = spec.workloads[test_id]
        reached |= run_workload(spec, wl, None, _seed_for(test_id, 0, 7)).reached
    for bug in spec.known_bugs:
        for fault in bug.core_faults:
            assert fault.site_id in reached, (bug.bug_id, fault.site_id)


def test_failover_priority_order():
    """best_candidate is the lowest-priority live datanode, regardless of
    the order the peer list happens to be in."""
    from repro.instrument.runtime import Runtime
    from repro.instrument.trace import RunTrace
    from repro.sim import SimEnv
    from repro.workloads.dfs import build_cluster

    spec = get_system("minidfs")
    trace = RunTrace(test_id="dfs.idle")
    rt = Runtime(spec.registry, trace=trace)
    env = SimEnv(seed=3)
    env.runtime = rt
    rt.bind_env(env)
    nodes = build_cluster(env, rt, DfsConfig(auto_failover=True))
    nn0, dn0, dn1, dn2 = nodes
    assert dn1.best_candidate(["dn2", "dn0", "dn1"]) == "dn0"
    # A datanode is always its own candidate of last resort ...
    assert dn1.best_candidate(["dn2", "dn1"]) == "dn1"
    assert dn1.best_candidate([]) == "dn1"
    # ... while a pure namenode ranks only live datanodes.
    assert nn0.best_candidate(["dn1", "dn2"]) == "dn1"
    assert nn0.best_candidate([]) is None
    # The handover path: promotion rebuilds the namespace from the pulled
    # block reports and demotes the old master.
    env.schedule_at(1_000.0, dn0, dn0.become_master)
    env.run(3_000.0)
    assert dn0.is_master and not nn0.is_master
    assert dn0.elections_started == 1
    assert dn0.block_map, "promoted master rebuilt an empty namespace"
    assert dn1.master_name == "dn0" and dn2.master_name == "dn0"


def test_reregistration_retry_backoff():
    """A datanode that cannot reach the master retries registration with
    doubling backoff, capped, and resets the backoff once registered."""
    from repro.instrument.runtime import Runtime
    from repro.instrument.trace import RunTrace
    from repro.sim import SimEnv
    from repro.workloads.dfs import build_cluster

    spec = get_system("minidfs")
    trace = RunTrace(test_id="dfs.idle")
    rt = Runtime(spec.registry, trace=trace)
    env = SimEnv(seed=3)
    env.runtime = rt
    rt.bind_env(env)
    # auto_failover off: with the master down long enough, dn0 would
    # otherwise promote itself and stop retrying registration.
    cfg = DfsConfig(register_backoff_ms=2_000.0, register_backoff_cap_ms=16_000.0,
                    auto_failover=False)
    nodes = build_cluster(env, rt, cfg)
    nn0, dn0 = nodes[0], nodes[1]
    nn0.crash()
    dn0.registered = False  # build_cluster pre-registers the datanodes
    assert dn0.register_backoff_ms == 2_000.0
    env.schedule_at(1_000.0, dn0, dn0.register_with_master)
    # Each failed attempt schedules the next retry at the current backoff,
    # then doubles it (heartbeat-timeout busy time stretches the wall-clock
    # spacing, never the doubling).
    env.run(2_000.0)
    assert dn0.register_backoff_ms == 4_000.0
    env.run(120_000.0)  # retries double to the ceiling while nn0 stays down
    assert dn0.register_backoff_ms == 16_000.0
    assert not dn0.registered
    nn0.restart()
    env.run(240_000.0)  # the next retry reaches the restarted master
    assert dn0.registered
    assert dn0.register_backoff_ms == 2_000.0


def test_restart_resets_datanode_registration():
    """A restarted datanode must re-register (registered=False) and a
    restarted master comes back with an empty namespace."""
    from repro.instrument.runtime import Runtime
    from repro.instrument.trace import RunTrace
    from repro.sim import SimEnv
    from repro.workloads.dfs import build_cluster

    spec = get_system("minidfs")
    trace = RunTrace(test_id="dfs.idle")
    rt = Runtime(spec.registry, trace=trace)
    env = SimEnv(seed=3)
    env.runtime = rt
    rt.bind_env(env)
    nodes = build_cluster(env, rt, DfsConfig())
    nn0, dn0 = nodes[0], nodes[1]
    assert dn0.registered and nn0.block_map
    dn0.crash()
    dn0.restart()
    assert not dn0.registered
    nn0.crash()
    nn0.restart()
    assert not nn0.block_map and not nn0.last_dn_heartbeat


@pytest.mark.parametrize(
    "fault,test_id,expected",
    [
        # DFS-1: slow block-report processing on the master -> heartbeat
        # RPC timeouts on the datanodes.
        (FaultKey("nn.report.blocks", InjKind.DELAY), "dfs.hb_storm",
         FaultKey("dn.hb.rpc", InjKind.EXCEPTION)),
        # DFS-1: a lost heartbeat ack -> full re-registration -> block
        # report processing growth on the master.
        (FaultKey("dn.hb.rpc", InjKind.EXCEPTION), "dfs.hb_storm",
         FaultKey("nn.report.blocks", InjKind.DELAY)),
        # DFS-2: a slow namespace rebuild keeps the new master too busy to
        # ack heartbeats -> the standby master-liveness detector trips.
        (FaultKey("fo.rebuild.entries", InjKind.DELAY), "dfs.failover",
         FaultKey("dn.master.is_down", InjKind.NEGATION)),
        # DFS-2: a tripped liveness detector -> promotion -> namespace
        # rebuild growth.
        (FaultKey("dn.master.is_down", InjKind.NEGATION), "dfs.failover",
         FaultKey("fo.rebuild.entries", InjKind.DELAY)),
        # DFS-2 trigger: a partition of a master-adjacent link starves a
        # standby of acked heartbeats past the liveness timeout.
        (FaultKey("env.link.dn1~nn0", InjKind("partition")), "dfs.failover",
         FaultKey("dn.master.is_down", InjKind.NEGATION)),
        # DFS-3: slow re-replication receives -> transfer RPC timeouts.
        (FaultKey("dn.pipe.recv", InjKind.DELAY), "dfs.churn",
         FaultKey("nn.rerepl.rpc", InjKind.EXCEPTION)),
        # DFS-3: a failed transfer -> rescan-on-failure grows the pending
        # set -> more transfers into the surviving datanodes.
        (FaultKey("nn.rerepl.rpc", InjKind.EXCEPTION), "dfs.churn",
         FaultKey("dn.pipe.recv", InjKind.DELAY)),
        # DFS-4: slow ack building keeps the flush behind the ack timeout
        # -> overdue-ack retry RPCs time out against the busy datanode.
        (FaultKey("dn.ack.build", InjKind.DELAY), "dfs.churn",
         FaultKey("nn.retry.rpc", InjKind.EXCEPTION)),
        # DFS-4: a failed retry -> the ack channel is distrusted for a
        # window -> every scan retries every inflight transfer -> the
        # duplicate receives grow the ack-flush work.
        (FaultKey("nn.retry.rpc", InjKind.EXCEPTION), "dfs.churn",
         FaultKey("dn.ack.build", InjKind.DELAY)),
        # DFS-4 trigger: datagram loss on a master-adjacent link eats ack
        # datagrams (never RPCs) -> sustained overdue-ack retry traffic.
        (FaultKey("env.link.dn0~nn0", InjKind("msg_drop")), "dfs.churn",
         FaultKey("dn.ack.build", InjKind.DELAY)),
    ],
)
def test_seeded_feedback_paths_fire(spec, fault, test_id, expected):
    driver = ExperimentDriver(spec, CSnakeConfig(**SMOKE))
    result = driver.run_experiment(fault, test_id)
    assert expected in result.interference


def test_smoke_campaign_detects_nothing_without_env_faults(spec):
    """Every seeded minidfs bug is gated on an environment disturbance, so
    the classic three-kind campaign must come back empty — the contrast
    the integration campaign test builds on."""
    ctx = Pipeline.default(spec, CSnakeConfig(**SMOKE)).run()
    report = ctx.get("report")
    assert report.detected_bugs == []
