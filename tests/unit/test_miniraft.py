"""Unit tests for the MiniRaft consensus target."""

import pytest

from repro.config import CSnakeConfig
from repro.core.driver import ExperimentDriver, _seed_for, run_workload
from repro.instrument.analyzer import analyze
from repro.pipeline import Pipeline
from repro.systems import get_system
from repro.types import FaultKey, InjKind

#: Reduced configuration used by every campaign-shaped test here (and by
#: CI's warm-cache smoke): seconds, not minutes.
SMOKE = dict(repeats=2, delay_values_ms=(500.0, 8000.0), seed=7, budget_per_fault=2)


@pytest.fixture(scope="module")
def spec():
    return get_system("miniraft")


def test_registry_and_ground_truth(spec):
    assert len(spec.registry) == 36  # 30 code sites + 3 node + 3 link env sites
    assert len(spec.registry.env_sites()) == 6
    assert len(spec.workloads) == 9
    assert [b.bug_id for b in spec.known_bugs] == [
        "RAFT-1", "RAFT-2", "RAFT-3", "RAFT-4", "RAFT-5", "RAFT-6",
    ]
    for bug in spec.known_bugs:
        for fault in bug.core_faults | bug.trigger_faults:
            assert fault.site_id in spec.registry, bug.bug_id
    raft5 = spec.bug("RAFT-5")
    assert raft5.trigger_faults, "RAFT-5 is gated on environment trigger faults"
    assert all(f.kind is InjKind("partition") for f in raft5.trigger_faults)
    raft6 = spec.bug("RAFT-6")
    assert raft6.trigger_faults, "RAFT-6 is gated on a composed fault schedule"
    assert all(
        f.kind is InjKind("partition_during_restart") for f in raft6.trigger_faults
    )


def test_fault_space_excludes_filtered_sites(spec):
    result = analyze(spec.registry)
    selected = {f.site_id for f in result.faults}
    assert "ldr.metrics.flush" not in selected  # constant bound
    assert "flw.conf.is_voter" not in selected  # final-only detector
    assert "raft.sec.cert_check" not in selected  # security-related
    assert "flw.append.apply" in selected
    assert "ldr.quorum.has" in selected


def test_profiles_deterministic_and_fault_free(spec):
    """Fault-free runs are reproducible and counterfactually clean: none of
    the detector/exception faults the seeded bugs rely on occur naturally."""
    bug_faults = set()
    for bug in spec.known_bugs:
        bug_faults |= set(bug.core_faults)
    # raft.partition's scripted cut-and-heal naturally times out the
    # leader's AppendEntries to the severed follower — intentional
    # environment churn; FCA's counterfactual exclusion is per-test, and
    # RAFT-1 detection relies on raft.resend, whose profile stays clean.
    # raft.churn's scripted crash drill does the same: appends to the
    # crashed follower time out until the restart lands.
    allowed = {
        "raft.partition": {FaultKey("ldr.append.rpc", InjKind.EXCEPTION)},
        "raft.churn": {FaultKey("ldr.append.rpc", InjKind.EXCEPTION)},
    }
    for test_id in spec.workload_ids():
        wl = spec.workloads[test_id]
        a = run_workload(spec, wl, None, _seed_for(test_id, 0, 99))
        b = run_workload(spec, wl, None, _seed_for(test_id, 0, 99))
        assert a.loop_counts == b.loop_counts, test_id
        assert not a.saturated, test_id
        unexpected = (a.natural_faults() & bug_faults) - allowed.get(test_id, set())
        assert not unexpected, (test_id, unexpected)


def test_bug_core_faults_reachable_somewhere(spec):
    reached = set()
    for test_id in spec.workload_ids():
        wl = spec.workloads[test_id]
        reached |= run_workload(spec, wl, None, _seed_for(test_id, 0, 7)).reached
    for bug in spec.known_bugs:
        for fault in bug.core_faults:
            assert fault.site_id in reached, (bug.bug_id, fault.site_id)


def test_scripted_handover_elects_node1(spec):
    """The elections workload's scripted hand-over reaches the vote path in
    profile runs without tripping the election-timeout detector."""
    trace = run_workload(
        spec, spec.workloads["raft.elections"], None, _seed_for("raft.elections", 0, 7)
    )
    assert "cand.vote.requests" in trace.reached
    assert "cand.vote.rpc" in trace.reached
    assert FaultKey("flw.election.timed_out", InjKind.NEGATION) not in trace.natural_faults()


@pytest.mark.parametrize(
    "fault,test_id,expected",
    [
        # RAFT-1: lost AppendEntries ack -> resend window -> apply growth.
        (FaultKey("ldr.append.rpc", InjKind.EXCEPTION), "raft.resend",
         FaultKey("flw.append.apply", InjKind.DELAY)),
        # RAFT-3: negated quorum detector -> resync storm -> apply growth.
        (FaultKey("ldr.quorum.has", InjKind.NEGATION), "raft.quorum",
         FaultKey("flw.append.apply", InjKind.DELAY)),
        # RAFT-4: lost InstallSnapshot ack -> transfer restarts from chunk 0.
        (FaultKey("ldr.snap.rpc", InjKind.EXCEPTION), "raft.snapshot",
         FaultKey("flw.snap.chunks", InjKind.DELAY)),
        # RAFT-5: delayed reconnect catch-up -> stalled heartbeats -> the
        # election-timeout detector trips.
        (FaultKey("ldr.reconnect.catchup", InjKind.DELAY), "raft.partition",
         FaultKey("flw.election.timed_out", InjKind.NEGATION)),
        # RAFT-5: negated election timeout -> election -> every peer treated
        # as reconnecting -> catch-up loop growth.
        (FaultKey("flw.election.timed_out", InjKind.NEGATION), "raft.partition",
         FaultKey("ldr.reconnect.catchup", InjKind.DELAY)),
        # RAFT-5 trigger: an injected partition (cut + heal) drives the
        # post-heal reconnect catch-up — the environment edge the bug's
        # trigger gate requires.
        (FaultKey("env.link.raft0~raft1", InjKind("partition")), "raft.partition",
         FaultKey("ldr.reconnect.catchup", InjKind.DELAY)),
    ],
)
def test_seeded_feedback_paths_fire(spec, fault, test_id, expected):
    driver = ExperimentDriver(spec, CSnakeConfig(**SMOKE))
    result = driver.run_experiment(fault, test_id)
    assert expected in result.interference


def test_smoke_campaign_detects_a_seeded_bug(spec):
    ctx = Pipeline.default(spec, CSnakeConfig(**SMOKE)).run()
    report = ctx.get("report")
    assert report.detected_bugs, "no seeded miniraft bug detected"
