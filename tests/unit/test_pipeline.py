"""Unit tests for the pipeline framework: stage DAG validation, context,
executors, events, and session round-trips."""

import pytest

from repro.config import CSnakeConfig
from repro.errors import MissingArtifact, SessionMismatch, StageDependencyError
from repro.pipeline import (
    EventRecorder,
    ParallelExecutor,
    Pipeline,
    PipelineContext,
    SerialExecutor,
    Session,
    Stage,
    default_stages,
    make_executor,
)
from repro.pipeline.events import (
    STAGE_CACHED,
    STAGE_FINISHED,
    STAGE_RESUMED,
    STAGE_STARTED,
)
from repro.systems import get_system

FAST = dict(repeats=2, delay_values_ms=(2000.0,), seed=7, budget_per_fault=1)


def fast_config(**overrides):
    params = dict(FAST)
    params.update(overrides)
    return CSnakeConfig(**params)


class _Produce(Stage):
    def __init__(self, name, requires=(), provides=()):
        self.name = name
        self.requires = tuple(requires)
        self.provides = tuple(provides)

    def run(self, ctx):
        for name in self.requires:
            ctx.require(name)
        for name in self.provides:
            ctx.put(name, "value-of-%s" % name)


# ---------------------------------------------------------------- validation


def test_default_stage_graph_is_valid():
    Pipeline(get_system("toy"), fast_config())  # validates in __init__


def test_unsatisfied_requires_rejected_before_running():
    stages = [_Produce("b", requires=("alpha",), provides=("beta",))]
    with pytest.raises(StageDependencyError, match="alpha"):
        Pipeline(get_system("toy"), fast_config(), stages=stages)


def test_order_matters_for_requires():
    bad = [
        _Produce("late", requires=("early-out",), provides=("late-out",)),
        _Produce("early", provides=("early-out",)),
    ]
    with pytest.raises(StageDependencyError):
        Pipeline(get_system("toy"), fast_config(), stages=bad)
    good = list(reversed(bad))
    ctx = Pipeline(get_system("toy"), fast_config(), stages=good).run()
    assert ctx.get("late-out") == "value-of-late-out"


def test_duplicate_stage_names_rejected():
    stages = [_Produce("x", provides=("a",)), _Produce("x", provides=("b",))]
    with pytest.raises(StageDependencyError, match="duplicate"):
        Pipeline(get_system("toy"), fast_config(), stages=stages)


def test_stage_must_provide_what_it_promises():
    class Liar(Stage):
        name = "liar"
        provides = ("thing",)

        def run(self, ctx):
            pass

    with pytest.raises(StageDependencyError, match="without providing"):
        Pipeline(get_system("toy"), fast_config(), stages=[Liar()]).run()


def test_partial_stage_prefix_runs():
    stages = [s for s in default_stages() if s.name in ("analyze", "profile")]
    ctx = Pipeline(get_system("toy"), fast_config(), stages=stages).run()
    assert ctx.has("analysis") and ctx.has("profiles")
    assert not ctx.has("report")


def test_beam_stage_alone_is_rejected():
    stages = [s for s in default_stages() if s.name == "search"]
    with pytest.raises(StageDependencyError, match="allocation"):
        Pipeline(get_system("toy"), fast_config(), stages=stages)


# ------------------------------------------------------------------- context


def test_context_require_raises_missing_artifact():
    ctx = PipelineContext(get_system("toy"), fast_config())
    with pytest.raises(MissingArtifact, match="analysis"):
        ctx.require("analysis")
    ctx.put("analysis", object())
    assert ctx.has("analysis")


# ----------------------------------------------------------------- executors


def test_make_executor_picks_backend():
    assert isinstance(make_executor(1), SerialExecutor)
    parallel = make_executor(3)
    assert isinstance(parallel, ParallelExecutor)
    parallel.close()


def test_executors_preserve_input_order():
    items = list(range(20))
    fn = lambda x: x * x  # noqa: E731
    serial = SerialExecutor().map(fn, items)
    with ParallelExecutor(4) as pool:
        threaded = pool.map(fn, items)
    assert serial == threaded == [x * x for x in items]


def test_parallel_executor_propagates_worker_errors():
    def boom(x):
        raise ValueError("worker %d" % x)

    with ParallelExecutor(2) as pool:
        with pytest.raises(ValueError):
            pool.map(boom, [1, 2, 3])


# -------------------------------------------------------------------- events


def test_stage_events_emitted_in_order():
    recorder = EventRecorder()
    stages = [_Produce("one", provides=("a",)), _Produce("two", requires=("a",), provides=("b",))]
    Pipeline(get_system("toy"), fast_config(), stages=stages, observers=[recorder]).run()
    assert recorder.kinds("one") == [STAGE_STARTED, STAGE_FINISHED]
    assert recorder.kinds("two") == [STAGE_STARTED, STAGE_FINISHED]


def test_already_computed_artifacts_skip_the_stage():
    recorder = EventRecorder()
    ctx = PipelineContext(get_system("toy"), fast_config())
    ctx.put("a", "precomputed")
    stages = [_Produce("one", provides=("a",))]
    Pipeline(get_system("toy"), fast_config(), stages=stages, observers=[recorder], ctx=ctx).run()
    assert recorder.kinds("one") == [STAGE_CACHED]
    assert ctx.get("a") == "precomputed"


# ------------------------------------------------------------------ sessions


def test_session_persists_and_resumes_stages(tmp_path):
    cfg = fast_config()
    session = Session.attach(tmp_path, "toy", cfg)
    stages = [s for s in default_stages() if s.name in ("analyze", "profile")]
    Pipeline(get_system("toy"), cfg, stages=stages, session=session).run()
    assert sorted(Session.open(tmp_path).completed) == ["analysis", "profiles"]

    recorder = EventRecorder()
    session2 = Session.open(tmp_path)
    ctx = Pipeline(
        get_system("toy"), session2.config, session=session2, observers=[recorder]
    ).run()
    assert recorder.kinds("analyze") == [STAGE_RESUMED]
    assert recorder.kinds("profile") == [STAGE_RESUMED]
    assert recorder.kinds("allocate") == [STAGE_STARTED, STAGE_FINISHED]
    assert ctx.get("report") is not None


def test_session_rejects_mismatched_config(tmp_path):
    Session.attach(tmp_path, "toy", fast_config())
    with pytest.raises(SessionMismatch, match="seed"):
        Session.attach(tmp_path, "toy", fast_config(seed=99))
    with pytest.raises(SessionMismatch, match="system"):
        Session.attach(tmp_path, "minihdfs2", fast_config())


def test_session_allows_worker_count_changes(tmp_path):
    Session.attach(tmp_path, "toy", fast_config())
    Session.attach(tmp_path, "toy", fast_config(experiment_workers=8))


def test_filtered_stage_list_continues_a_session(tmp_path):
    """`--stages allocate` must load analyze/profile artifacts persisted by
    an earlier `--stages analyze,profile` run of the same session."""
    cfg = fast_config()
    session = Session.attach(tmp_path, "toy", cfg)
    first = [s for s in default_stages() if s.name in ("analyze", "profile")]
    Pipeline(get_system("toy"), cfg, stages=first, session=session).run()

    session2 = Session.open(tmp_path)
    second = [s for s in default_stages() if s.name == "allocate"]
    ctx = Pipeline(get_system("toy"), session2.config, stages=second, session=session2).run()
    outcome = ctx.get("allocation").outcome
    assert outcome.budget_used > 0
    assert ctx.driver.runs_executed > 0  # profile artifacts were hydrated

    # ... and the remaining stages can continue from the same session.
    session3 = Session.open(tmp_path)
    tail = [s for s in default_stages() if s.name in ("search", "report")]
    ctx2 = Pipeline(get_system("toy"), session3.config, stages=tail, session=session3).run()
    report = ctx2.get("report")
    assert report is not None
    assert report.n_edges == len(ctx.driver.edges)


def test_pipeline_reconciles_executor_with_supplied_ctx():
    """An explicit executor must be the one stages actually run on."""
    ctx = PipelineContext(get_system("toy"), fast_config())
    with ParallelExecutor(2) as pool:
        pipeline = Pipeline(get_system("toy"), fast_config(), executor=pool, ctx=ctx)
        assert pipeline.executor is pool
        assert ctx.executor is pool
    # Without an explicit executor, the ctx's executor wins.
    ctx2 = PipelineContext(get_system("toy"), fast_config())
    pipeline2 = Pipeline(get_system("toy"), fast_config(experiment_workers=4), ctx=ctx2)
    assert pipeline2.executor is ctx2.executor


def test_config_rejects_bad_delay_values():
    from repro.errors import ConfigError

    for bad in ((float("nan"),), (-100.0,), (0.0,), (250.0, float("inf"))):
        with pytest.raises(ConfigError):
            fast_config(delay_values_ms=bad)


def test_parallel_executor_leaves_no_worker_threads():
    import threading

    before = threading.active_count()
    pool = ParallelExecutor(4)
    assert pool.map(lambda x: x + 1, list(range(8))) == list(range(1, 9))
    assert threading.active_count() == before
