"""Unit tests for detection reports and ground-truth matching."""

from repro.core.cycles import Cycle
from repro.core.report import build_report, match_bugs
from repro.systems.base import KnownBug, SystemSpec
from repro.instrument.sites import SiteRegistry
from repro.types import EdgeType

from tests.helpers import dly, edge, exc


def make_spec():
    spec = SystemSpec(name="s", registry=SiteRegistry("s"))
    spec.known_bugs = [
        KnownBug(
            bug_id="B-1",
            description="",
            signature="1D|1E|0N",
            core_faults=frozenset({dly("L"), exc("x")}),
        ),
        KnownBug(
            bug_id="B-2",
            description="",
            signature="0D|2E|0N",
            core_faults=frozenset({exc("p"), exc("q")}),
        ),
    ]
    return spec


def cyc(*edges):
    return Cycle(tuple(edges))


def test_match_bugs_by_core_fault_subset():
    spec = make_spec()
    c1 = cyc(
        edge(dly("L"), exc("x"), etype=EdgeType.E_D),
        edge(exc("x"), dly("L"), etype=EdgeType.SP_I, test_id="t2"),
    )
    matches = match_bugs(spec, [c1])
    assert matches[0].detected
    assert not matches[1].detected


def test_partial_core_faults_do_not_match():
    spec = make_spec()
    c = cyc(edge(exc("x"), exc("x")))  # only one of B-1's two core faults
    matches = match_bugs(spec, [c])
    assert not matches[0].detected


def test_build_report_counts():
    spec = make_spec()
    cycles = [
        cyc(
            edge(dly("L"), exc("x"), etype=EdgeType.E_D),
            edge(exc("x"), dly("L"), etype=EdgeType.SP_I, test_id="t2"),
        ),
        cyc(edge(exc("z"), exc("z"))),
    ]
    report = build_report(spec, cycles, None, n_faults=10, budget_used=40)
    assert report.summary()["cycles"] == 2
    assert report.detected_bugs == ["B-1"]
    assert report.missed_bugs == ["B-2"]
    # One cluster contains the ground-truth cycle.
    assert len(report.true_positive_clusters()) == 1


def test_best_cycle_is_shortest():
    spec = make_spec()
    short = cyc(
        edge(dly("L"), exc("x"), etype=EdgeType.E_D),
        edge(exc("x"), dly("L"), etype=EdgeType.SP_I, test_id="t2"),
    )
    long = cyc(
        edge(dly("L"), exc("x"), etype=EdgeType.E_D),
        edge(exc("x"), exc("y"), test_id="t2"),
        edge(exc("y"), dly("L"), etype=EdgeType.SP_I, test_id="t3"),
    )
    report = build_report(spec, [long, short], None)
    match = report.bug_matches[0]
    assert match.best_cycle is not None
    assert len(match.best_cycle) == 2


def test_empty_cycle_list_reports_all_missed():
    spec = make_spec()
    report = build_report(spec, [], None)
    assert report.detected_bugs == []
    assert len(report.missed_bugs) == 2
    assert report.true_positive_clusters() == []
