"""The profile-side FCA input caches on RunGroup, and their invalidation.

A profile group answers the same derived-statistic queries once per
*experiment* (control matrices, occurrence maps, reached sites), so the
answers are memoized per group — and must be dropped the moment the
group gains a run, or a growing group would serve stale statistics.
"""

from tests.helpers import dly, event, exc, group, run_trace


def _group():
    return group(
        "t1",
        None,
        [
            run_trace("t1", events=[event(exc("a"))], loop_counts={"l1": 3}),
            run_trace("t1", loop_counts={"l1": 5, "l2": 1}),
        ],
    )


def test_loop_rows_cached_and_invalidated():
    g = _group()
    assert g.loop_samples("l1") == [3, 5]
    assert g.loop_count_rows(["l1", "l2"]) == [[3, 5], [0, 1]]
    # cached tuples are handed out as fresh lists — mutating a result must
    # not corrupt later queries
    row = g.loop_samples("l1")
    row.append(99)
    assert g.loop_samples("l1") == [3, 5]
    g.add(run_trace("t1", loop_counts={"l1": 7}))
    assert g.loop_samples("l1") == [3, 5, 7]
    assert g.loop_count_rows(["l2"]) == [[0, 1, 0]]


def test_natural_occurrence_cached_and_invalidated():
    g = _group()
    assert g.natural_faults() == {exc("a")}
    assert g.fault_occurrence_frac(exc("a")) == 0.5
    assert g.fault_occurrence_frac(dly("x")) == 0.0
    g.natural_faults().add(dly("x"))  # copies, not the cache itself
    assert g.natural_faults() == {exc("a")}
    g.add(run_trace("t1", events=[event(exc("a")), event(exc("b"))]))
    assert g.natural_faults() == {exc("a"), exc("b")}
    assert g.fault_occurrence_frac(exc("a")) == 2 / 3
    assert g.fault_occurrence_frac(exc("b")) == 1 / 3


def test_reached_and_coverage_cached_and_invalidated():
    g = _group()
    # "a" is reached via the fault event's site, l1/l2 via loop counts
    assert g.reached() == {"a", "l1", "l2"}
    assert g.coverage() == 3
    g.reached().discard("l1")  # copies, not the cache itself
    assert g.reached() == {"a", "l1", "l2"}
    g.add(run_trace("t1", loop_counts={"l3": 1}))
    assert g.reached() == {"a", "l1", "l2", "l3"}
    assert g.coverage() == 4


def test_empty_group_queries():
    from repro.instrument.trace import RunGroup

    g = RunGroup(test_id="t1", injection=None)
    assert g.natural_faults() == set()
    assert g.fault_occurrence_frac(exc("a")) == 0.0
    assert g.reached() == set()
    assert g.coverage() == 0
    assert g.loop_samples("l1") == []


def test_group_equality_ignores_cache_state():
    # dataclass equality compares fields only — a queried group still
    # equals its never-queried twin (session round-trips rely on this)
    a, b = _group(), _group()
    a.natural_faults()
    a.reached()
    a.loop_samples("l1")
    assert a == b


def test_group_pickles_with_caches():
    import pickle

    g = _group()
    g.reached()
    g.natural_faults()
    clone = pickle.loads(pickle.dumps(g))
    assert clone == g
    assert clone.reached() == g.reached()
    clone.add(run_trace("t1", loop_counts={"l9": 1}))
    assert "l9" in clone.reached()
