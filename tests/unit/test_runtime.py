"""Unit tests for the instrumentation runtime agent."""

import pytest

from repro.errors import IOEx
from repro.instrument import InjectionPlan, Runtime, SiteRegistry
from repro.instrument.runtime import NullRuntime
from repro.instrument.trace import RunTrace
from repro.types import FaultKey, InjKind


@pytest.fixture
def registry():
    reg = SiteRegistry("toy")
    reg.loop("toy.outer", "Toy.run")
    reg.loop("toy.inner", "Toy.run", parent="toy.outer", order=0)
    reg.throw("toy.ioe", "Toy.step", exception="IOException")
    reg.detector("toy.is_stale", "Toy.check", error_value=True)
    reg.branch("toy.b1", "Toy.step")
    return reg


def make_rt(registry, plan=None):
    trace = RunTrace(test_id="t1", injection=plan)
    return Runtime(registry, trace=trace, plan=plan), trace


class TestThrowPoint:
    def test_no_injection_no_natural_is_noop(self, registry):
        rt, trace = make_rt(registry)
        rt.throw_point("toy.ioe", IOEx, natural=False)
        assert trace.events == []
        assert "toy.ioe" in trace.reached

    def test_natural_condition_raises_and_records(self, registry):
        rt, trace = make_rt(registry)
        with pytest.raises(IOEx):
            rt.throw_point("toy.ioe", IOEx, natural=True)
        assert len(trace.events) == 1
        event = trace.events[0]
        assert event.fault == FaultKey("toy.ioe", InjKind.EXCEPTION)
        assert not event.injected

    def test_injection_fires_once(self, registry):
        plan = InjectionPlan(FaultKey("toy.ioe", InjKind.EXCEPTION))
        rt, trace = make_rt(registry, plan)
        with pytest.raises(IOEx):
            rt.throw_point("toy.ioe", IOEx, natural=False)
        # Second reach: injection already fired, no natural condition.
        rt.throw_point("toy.ioe", IOEx, natural=False)
        injected = [e for e in trace.events if e.injected]
        assert len(injected) == 1

    def test_injection_raises_declared_type(self, registry):
        plan = InjectionPlan(FaultKey("toy.ioe", InjKind.EXCEPTION))
        rt, _ = make_rt(registry, plan)
        with pytest.raises(IOEx):
            rt.throw_point("toy.ioe", IOEx)

    def test_injection_does_not_fire_at_other_sites(self, registry):
        plan = InjectionPlan(FaultKey("toy.ioe", InjKind.EXCEPTION))
        rt, trace = make_rt(registry, plan)
        registry.throw("toy.other", "Toy.step2")
        rt.throw_point("toy.other", IOEx, natural=False)
        assert trace.events == []


class TestDetector:
    def test_natural_error_value_recorded(self, registry):
        rt, trace = make_rt(registry)
        assert rt.detector("toy.is_stale", True) is True
        assert len(trace.events) == 1
        assert trace.events[0].fault == FaultKey("toy.is_stale", InjKind.NEGATION)

    def test_non_error_value_not_recorded(self, registry):
        rt, trace = make_rt(registry)
        assert rt.detector("toy.is_stale", False) is False
        assert trace.events == []

    def test_sticky_negation_flips_every_call(self, registry):
        plan = InjectionPlan(FaultKey("toy.is_stale", InjKind.NEGATION), sticky=True)
        rt, trace = make_rt(registry, plan)
        assert rt.detector("toy.is_stale", False) is True
        assert rt.detector("toy.is_stale", False) is True
        assert sum(1 for e in trace.events if e.injected) == 2

    def test_one_shot_negation_flips_once(self, registry):
        plan = InjectionPlan(FaultKey("toy.is_stale", InjKind.NEGATION), sticky=False)
        rt, _ = make_rt(registry, plan)
        assert rt.detector("toy.is_stale", False) is True
        assert rt.detector("toy.is_stale", False) is False


class TestLoop:
    def test_iteration_counting(self, registry):
        rt, trace = make_rt(registry)
        total = sum(x for x in rt.loop("toy.outer", range(5)))
        assert total == 10
        assert trace.loop_counts["toy.outer"] == 5

    def test_delay_injection_spins_every_iteration(self, registry):
        class FakeEnv:
            def __init__(self):
                self.spun = 0.0
                self.now = 0.0

            def spin(self, ms):
                self.spun += ms

        plan = InjectionPlan(FaultKey("toy.outer", InjKind.DELAY), delay_ms=100.0)
        rt, _ = make_rt(registry, plan)
        env = FakeEnv()
        rt.bind_env(env)
        for _ in rt.loop("toy.outer", range(7)):
            pass
        assert env.spun == pytest.approx(700.0)

    def test_loop_guard_counts_true_evaluations(self, registry):
        rt, trace = make_rt(registry)
        i = 0
        with rt.function("Toy.run"):
            while rt.loop_guard("toy.outer", i < 4):
                i += 1
        assert trace.loop_counts["toy.outer"] == 4

    def test_nested_loop_states_have_distinct_scopes(self, registry):
        rt, trace = make_rt(registry)
        with rt.function("Toy.caller"):
            with rt.function("Toy.run"):
                for _ in rt.loop("toy.outer", range(2)):
                    rt.branch("toy.b_outer", True)
                    for _ in rt.loop("toy.inner", range(2)):
                        rt.branch("toy.b_inner", False)
        inner_states = trace.loop_states["toy.inner"]
        assert all(s.branch_trace == (("toy.b_inner", False),) for s in inner_states)
        outer_states = trace.loop_states["toy.outer"]
        # Outer iteration scope saw its own branch only (inner scope popped).
        assert all(s.branch_trace == (("toy.b_outer", True),) for s in outer_states)


class TestLocalState:
    def test_call_stack_excludes_enclosing_function(self, registry):
        rt, trace = make_rt(registry)
        with rt.function("Toy.grandparent"):
            with rt.function("Toy.parent"):
                with rt.function("Toy.step"):
                    with pytest.raises(IOEx):
                        rt.throw_point("toy.ioe", IOEx, natural=True)
        state = trace.events[0].state
        assert state.call_stack == ("Toy.parent", "Toy.grandparent")

    def test_shallow_stack_padded_with_root(self, registry):
        rt, trace = make_rt(registry)
        with rt.function("Toy.step"):
            with pytest.raises(IOEx):
                rt.throw_point("toy.ioe", IOEx, natural=True)
        assert trace.events[0].state.call_stack == ("<root>", "<root>")

    def test_branch_trace_is_local_to_function(self, registry):
        rt, trace = make_rt(registry)
        with rt.function("Toy.parent"):
            rt.branch("toy.b_outer_fn", True)
            with rt.function("Toy.step"):
                rt.branch("toy.b1", True)
                rt.branch("toy.b2", False)
                with pytest.raises(IOEx):
                    rt.throw_point("toy.ioe", IOEx, natural=True)
        state = trace.events[0].state
        assert state.branch_trace == (("toy.b1", True), ("toy.b2", False))

    def test_branch_trace_is_local_to_loop_iteration(self, registry):
        rt, trace = make_rt(registry)
        with rt.function("Toy.run"):
            hit = False
            for i in rt.loop("toy.outer", range(3)):
                rt.branch("toy.b_iter", i == 2)
                if i == 2 and not hit:
                    hit = True
                    with pytest.raises(IOEx):
                        rt.throw_point("toy.ioe", IOEx, natural=True)
        state = trace.events[0].state
        assert state.branch_trace == (("toy.b_iter", True),)


class TestDisabledRuntime:
    def test_null_runtime_records_nothing(self, registry):
        rt = NullRuntime(registry)
        for _ in rt.loop("toy.outer", range(10)):
            rt.branch("toy.b1", True)
        assert rt.detector("toy.is_stale", True) is True
        rt.throw_point("toy.ioe", IOEx, natural=False)
        assert rt.trace.loop_counts == {}
        assert rt.trace.events == []

    def test_null_runtime_still_raises_natural_faults(self, registry):
        rt = NullRuntime(registry)
        with pytest.raises(IOEx):
            rt.throw_point("toy.ioe", IOEx, natural=True)
