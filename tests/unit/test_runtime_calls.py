"""Unit tests for the library-call / RPC hooks and the injection warmup."""

import pytest

from repro.errors import IOEx, NotPrimary
from repro.instrument import InjectionPlan, Runtime, SiteRegistry
from repro.instrument.trace import RunTrace
from repro.types import FaultKey, InjKind


class FakeEnv:
    def __init__(self):
        self.now = 0.0

    def spin(self, ms):
        self.now += ms


@pytest.fixture
def registry():
    reg = SiteRegistry("t")
    reg.lib_call("t.lib", "F.a")
    reg.lib_call("t.rpc", "F.b")
    return reg


def make_rt(registry, plan=None, now=0.0):
    trace = RunTrace(test_id="t1", injection=plan)
    rt = Runtime(registry, trace=trace, plan=plan)
    env = FakeEnv()
    env.now = now
    rt.bind_env(env)
    return rt, trace


class TestLibCall:
    def test_passthrough_and_reach(self, registry):
        rt, trace = make_rt(registry)
        assert rt.lib_call("t.lib", IOEx, lambda x: x + 1, 41) == 42
        assert "t.lib" in trace.reached
        assert trace.events == []

    def test_natural_declared_exception_recorded(self, registry):
        rt, trace = make_rt(registry)

        def boom():
            raise IOEx("x")

        with pytest.raises(IOEx):
            rt.lib_call("t.lib", IOEx, boom)
        assert trace.events[0].fault == FaultKey("t.lib", InjKind.EXCEPTION)
        assert not trace.events[0].injected

    def test_subclass_exception_recorded(self, registry):
        rt, trace = make_rt(registry)

        def boom():
            raise NotPrimary("standby")

        with pytest.raises(NotPrimary):
            rt.lib_call("t.lib", IOEx, boom)
        assert len(trace.events) == 1

    def test_undeclared_exception_not_recorded(self, registry):
        rt, trace = make_rt(registry)

        def boom():
            raise ValueError("not a fault")

        with pytest.raises(ValueError):
            rt.lib_call("t.lib", IOEx, boom)
        assert trace.events == []

    def test_injection_replaces_the_call(self, registry):
        plan = InjectionPlan(FaultKey("t.lib", InjKind.EXCEPTION))
        rt, trace = make_rt(registry, plan)
        called = []
        with pytest.raises(IOEx):
            rt.lib_call("t.lib", IOEx, lambda: called.append(1))
        assert called == []  # before-call semantics: connect failure
        assert trace.events[0].injected


class TestRpcCall:
    def test_injection_executes_call_first(self, registry):
        """Response-loss semantics: the work happens, then the caller sees
        the timeout (this is what retry-duplication cascades feed on)."""
        plan = InjectionPlan(FaultKey("t.rpc", InjKind.EXCEPTION))
        rt, trace = make_rt(registry, plan)
        called = []
        with pytest.raises(IOEx):
            rt.rpc_call("t.rpc", IOEx, lambda: called.append(1))
        assert called == [1]
        assert trace.events[0].injected

    def test_injection_fires_once(self, registry):
        plan = InjectionPlan(FaultKey("t.rpc", InjKind.EXCEPTION))
        rt, _ = make_rt(registry, plan)
        with pytest.raises(IOEx):
            rt.rpc_call("t.rpc", IOEx, lambda: None)
        assert rt.rpc_call("t.rpc", IOEx, lambda: "ok") == "ok"

    def test_natural_error_takes_precedence(self, registry):
        plan = InjectionPlan(FaultKey("t.rpc", InjKind.EXCEPTION))
        rt, trace = make_rt(registry, plan)

        def boom():
            raise IOEx("natural")

        with pytest.raises(IOEx):
            rt.rpc_call("t.rpc", IOEx, boom)
        assert not trace.events[0].injected
        # The one-time injection is still armed for the next call.
        with pytest.raises(IOEx):
            rt.rpc_call("t.rpc", IOEx, lambda: None)


class TestWarmup:
    def test_injection_dormant_before_warmup(self, registry):
        plan = InjectionPlan(FaultKey("t.lib", InjKind.EXCEPTION), warmup_ms=10_000.0)
        rt, trace = make_rt(registry, plan, now=5_000.0)
        assert rt.lib_call("t.lib", IOEx, lambda: "ok") == "ok"
        assert trace.events == []

    def test_injection_fires_after_warmup(self, registry):
        plan = InjectionPlan(FaultKey("t.lib", InjKind.EXCEPTION), warmup_ms=10_000.0)
        rt, trace = make_rt(registry, plan, now=15_000.0)
        with pytest.raises(IOEx):
            rt.lib_call("t.lib", IOEx, lambda: "ok")
        assert trace.events[0].injected
