"""Unit tests for the compositional fault-schedule API.

Combinator semantics (timed/seq/overlap/stagger), the schedule registry
and its digest, anchor-relative site resolution, plan validation, and
the graceful-degradation counter a runaway composed injection feeds.
"""

import pytest

from repro.config import CSnakeConfig
from repro.core.driver import ExperimentDriver
from repro.core.report import build_report
from repro.faults import (
    FaultSchedule,
    all_schedules,
    expand_kinds,
    expand_schedules,
    model_for,
    overlap,
    register_schedule,
    registered_kinds,
    registered_schedules,
    schedule_for,
    schedule_model_for,
    schedules_digest,
    seq,
    stagger,
    timed,
)
from repro.faults.schedule import _SCHEDULES
from repro.sim import SimEnv
from repro.systems import get_system
from repro.types import FaultKey, InjKind

CONFIG = CSnakeConfig()


# ------------------------------------------------------------- combinators


def test_timed_validates_kind_and_selector():
    ev = timed("node_crash", site="primary", restart_ms=5_000.0)
    assert ev.kind_id == "node_crash" and ev.duration_ms() == 5_000.0
    with pytest.raises(ValueError, match="registered single-fault kinds"):
        timed("gamma_burst")
    with pytest.raises(ValueError, match="site selector"):
        timed("node_crash", site="the_moon")


def test_schedule_names_are_not_composable_kinds():
    # Schedules compose *single-fault* kinds only: no recursion.
    with pytest.raises(ValueError, match="registered single-fault kinds"):
        timed("membership_churn")


def test_overlap_keeps_offsets():
    a = timed("node_crash", restart_ms=10_000.0)
    b = timed("partition", site="adjacent_link", offset_ms=3_000.0,
              duration_ms=20_000.0)
    assert overlap(a, b) == (a, b)
    with pytest.raises(ValueError):
        overlap()


def test_seq_chains_on_duration_params():
    a = timed("node_crash", restart_ms=10_000.0)
    b = timed("partition", site="adjacent_link", duration_ms=20_000.0)
    c = timed("node_crash", site="other_nodes", restart_ms=1_000.0)
    placed = seq(a, b, c, gap_ms=500.0)
    assert [ev.offset_ms for ev in placed] == [0.0, 10_500.0, 31_000.0]
    # An event's own offset is preserved relative to its slot.
    shifted = seq(a, timed("partition", site="adjacent_link",
                           offset_ms=2_000.0, duration_ms=20_000.0))
    assert shifted[1].offset_ms == 12_000.0


def test_stagger_sets_wave_step():
    wave = stagger(timed("node_crash", site="nodes", restart_ms=1_000.0),
                   step_ms=15_000.0)
    assert len(wave) == 1 and wave[0].stagger_ms == 15_000.0
    with pytest.raises(ValueError, match="positive"):
        stagger(timed("node_crash"), step_ms=0.0)


# ---------------------------------------------------------------- registry


def test_bundled_schedules_registered():
    assert registered_schedules() == ["membership_churn", "partition_during_restart"]
    assert [s.name for s in all_schedules()] == registered_schedules()
    assert schedule_for("membership_churn").char == "M"
    assert schedule_for("partition_during_restart").char == "R"


def test_schedules_stay_out_of_the_single_fault_registry():
    # expand_kinds("all") and the model registry are unchanged by
    # schedule registration — campaigns opt in via config.schedules.
    assert "membership_churn" not in registered_kinds()
    assert "membership_churn" not in expand_kinds("all")
    # ...but model_for resolves schedule kinds (driver/FCA/serializer path).
    assert model_for("membership_churn") is schedule_model_for("membership_churn")
    assert model_for(InjKind("partition_during_restart")).char == "R"


def test_expand_schedules_grammar():
    assert expand_schedules("all") == tuple(registered_schedules())
    assert expand_schedules("membership_churn") == ("membership_churn",)
    assert expand_schedules(" membership_churn , partition_during_restart ") == (
        "membership_churn", "partition_during_restart",
    )
    with pytest.raises(ValueError, match="unknown fault schedule"):
        expand_schedules("quake")
    with pytest.raises(ValueError, match="at least one"):
        expand_schedules("")


def test_schedule_may_not_shadow_a_fault_kind():
    with pytest.raises(ValueError, match="collides"):
        register_schedule(
            FaultSchedule(name="delay", char="Z", description="bad",
                          events=(timed("node_crash"),))
        )


def test_registering_a_schedule_shifts_the_digest_only():
    before = schedules_digest()
    schedule = FaultSchedule(
        name="test_tmp_wave", char="W", description="temporary",
        events=(timed("node_crash", restart_ms=1.0),),
    )
    register_schedule(schedule)
    try:
        assert schedules_digest() != before
        assert "test_tmp_wave" in registered_schedules()
        assert "test_tmp_wave" not in registered_kinds()  # model registry untouched
    finally:
        _SCHEDULES.pop("test_tmp_wave")
        InjKind._interned.pop("test_tmp_wave")
    assert schedules_digest() == before


# --------------------------------------------------------------- resolution


@pytest.fixture(scope="module")
def raft_registry():
    return get_system("miniraft").registry


def test_partition_during_restart_resolves_anchor_relative(raft_registry):
    model = schedule_model_for("partition_during_restart")
    events = model.resolve_events("env.node.raft1", raft_registry)
    assert events == (
        ("env.node.raft1", "node_crash", 0.0, (("restart_ms", 20_000.0),)),
        ("env.link.raft0~raft1", "partition", 5_000.0, (("duration_ms", 40_000.0),)),
    )


def test_membership_churn_resolves_as_rotated_wave(raft_registry):
    model = schedule_model_for("membership_churn")
    events = model.resolve_events("env.node.raft1", raft_registry)
    # Anchor node first, then declaration order rotated; 15s stagger.
    assert [(site, off) for site, _, off, _ in events] == [
        ("env.node.raft1", 0.0),
        ("env.node.raft2", 15_000.0),
        ("env.node.raft0", 30_000.0),
    ]
    assert all(kind == "node_crash" for _, kind, _, _ in events)


def test_resolution_scales_with_time_scale(raft_registry):
    model = schedule_model_for("membership_churn")
    events = model.resolve_events("env.node.raft0", raft_registry, scale=0.5)
    assert [off for _, _, off, _ in events] == [0.0, 7_500.0, 15_000.0]


def test_plans_carry_concrete_events_and_sites(raft_registry):
    model = schedule_model_for("partition_during_restart")
    fault = FaultKey("env.node.raft1", InjKind("partition_during_restart"))
    plans = model.plans_for_spec(fault, CONFIG, raft_registry)
    assert len(plans) == 1  # default time_scale sweep: the composition as declared
    assert plans[0].warmup_ms == CONFIG.injection_warmup_ms
    assert model.plan_sites(plans[0]) == ["env.link.raft0~raft1", "env.node.raft1"]
    model.validate_plan(plans[0])


def test_plans_for_requires_registry():
    model = schedule_model_for("membership_churn")
    with pytest.raises(NotImplementedError):
        model.plans_for(FaultKey("env.node.raft0", model.kind), CONFIG)


def test_anchor_must_be_an_env_node(raft_registry):
    model = schedule_model_for("membership_churn")
    with pytest.raises(ValueError, match="ENV_NODE"):
        model.resolve_events("env.link.raft0~raft1", raft_registry)


def test_validate_plan_rejects_malformed_events(raft_registry):
    from repro.instrument.plan import InjectionPlan, make_params

    model = schedule_model_for("membership_churn")
    fault = FaultKey("env.node.raft0", model.kind)
    # InjectionPlan validates via the model at construction time.
    with pytest.raises(ValueError, match="no events"):
        InjectionPlan(fault, warmup_ms=1.0, params=make_params(events=()))
    with pytest.raises(ValueError, match=">= 0"):
        InjectionPlan(
            fault, warmup_ms=1.0,
            params=make_params(events=(("env.node.raft0", "node_crash", -1.0, ()),)),
        )


# ---------------------------------------------- graceful degradation (abort)


def test_saturated_runs_count_as_aborted_not_raise(monkeypatch):
    spec = get_system("miniraft")
    config = CSnakeConfig(repeats=2, delay_values_ms=(500.0,), seed=7,
                          schedules=("partition_during_restart",))
    driver = ExperimentDriver(spec, config)
    fault = FaultKey("env.node.raft1", InjKind("partition_during_restart"))
    monkeypatch.setattr(SimEnv, "MAX_EVENTS", 200)
    result, runs = driver.execute_experiment(fault, "raft.churn")
    assert runs == 2
    assert result.aborted == 2  # every repetition hit the step limit
    report = build_report(
        spec, [], None, aborted_step_limit=sum(r.aborted for r in [result])
    )
    assert report.summary()["aborted_step_limit"] == 2
    assert report.to_dict()["aborted_step_limit"] == 2
