"""Round-trip tests for the JSON codecs and report serialization."""

import json

from repro.core.report import DetectionReport
from repro.instrument.analyzer import AnalysisResult
from repro.instrument.plan import InjectionPlan
from repro.serialize import (
    analysis_from_obj,
    analysis_to_obj,
    clustering_from_obj,
    clustering_to_obj,
    cycle_from_obj,
    cycle_to_obj,
    edge_from_obj,
    edge_to_obj,
    fault_from_obj,
    fault_to_obj,
    group_from_obj,
    group_to_obj,
    trace_from_obj,
    trace_to_obj,
)
from repro.core.clustering import Clustering, FaultCluster
from repro.core.cycles import Cycle
from repro.instrument.trace import FaultEvent
from repro.types import EdgeType

from tests.helpers import dly, edge, exc, group, neg, run_trace, state


def _via_json(obj):
    """Force a real JSON round-trip so non-serializable types surface."""
    return json.loads(json.dumps(obj))


def test_fault_key_roundtrip():
    for fault in (exc("a.b.c"), dly("x.loop"), neg("svc.is_ok")):
        assert fault_from_obj(_via_json(fault_to_obj(fault))) == fault


def test_fault_key_roundtrip_with_colon_free_sites():
    fault = exc("ns.op.throw")
    assert fault_to_obj(fault) == "ns.op.throw:exception"


def test_edge_roundtrip_preserves_states():
    e = edge(
        exc("a"),
        dly("b"),
        etype=EdgeType.SP_I,
        test_id="t9",
        src_states=[state(("f1", "f0"), (("br", True),))],
        dst_states=[state(("g1", "g0")), state(("h1", "h0"))],
    )
    back = edge_from_obj(_via_json(edge_to_obj(e)))
    assert back == e
    assert back.src_states == e.src_states
    assert back.dst_states == e.dst_states


def test_trace_roundtrip():
    plan = InjectionPlan(dly("loop.site"), delay_ms=500.0, warmup_ms=100.0)
    trace = run_trace(
        test_id="t1",
        injection=plan,
        events=[FaultEvent(fault=exc("a"), time=12.5, state=state(), injected=False)],
        loop_counts={"loop.site": 17},
        loop_states={"loop.site": [state(("l1", "l0"))]},
    )
    trace.saturated = True
    trace.virtual_end_ms = 99.5
    back = trace_from_obj(_via_json(trace_to_obj(trace)))
    assert back.test_id == trace.test_id
    assert back.injection == plan
    assert back.events == trace.events
    assert back.loop_counts == trace.loop_counts
    assert back.loop_states == trace.loop_states
    assert back.reached == trace.reached
    assert back.saturated and back.virtual_end_ms == 99.5


def test_group_roundtrip_preserves_statistics():
    g = group(
        "t1",
        None,
        [
            run_trace("t1", loop_counts={"l": 3}),
            run_trace("t1", loop_counts={"l": 5}),
        ],
    )
    back = group_from_obj(_via_json(group_to_obj(g)))
    assert back.loop_samples("l") == g.loop_samples("l")
    assert back.coverage() == g.coverage()


def test_analysis_roundtrip():
    analysis = AnalysisResult(
        system="toy",
        faults=[exc("a"), dly("b")],
        excluded={"c": ["test-only", "statically unreachable from any workload entry point"]},
        counts={"injectable": 2},
    )
    back = analysis_from_obj(_via_json(analysis_to_obj(analysis)))
    assert back.system == "toy"
    assert back.faults == analysis.faults
    assert back.excluded == analysis.excluded
    assert back.counts == analysis.counts


def test_analysis_from_obj_reads_legacy_scalar_reasons():
    """Pre-slice sessions stored one reason string per excluded site."""
    analysis = AnalysisResult(
        system="toy", faults=[exc("a")], excluded={"c": ["test-only"]}, counts={}
    )
    obj = _via_json(analysis_to_obj(analysis))
    obj["excluded"] = {"c": "test-only"}
    assert analysis_from_obj(obj).excluded == {"c": ["test-only"]}


def test_clustering_roundtrip():
    clustering = Clustering(
        clusters=[FaultCluster(0, [exc("a")]), FaultCluster(1, [dly("b"), neg("c")])]
    )
    back = clustering_from_obj(_via_json(clustering_to_obj(clustering)))
    assert [c.faults for c in back.clusters] == [c.faults for c in clustering.clusters]
    assert back.by_fault == clustering.by_fault
    assert clustering_from_obj(None) is None
    assert clustering_to_obj(None) is None


def test_cycle_roundtrip_keeps_identity():
    cycle = Cycle((edge(exc("a"), dly("b")), edge(dly("b"), exc("a"), etype=EdgeType.SP_D)))
    back = cycle_from_obj(_via_json(cycle_to_obj(cycle)))
    assert back.key() == cycle.key()
    assert back.signature() == cycle.signature()


def test_detection_report_dict_roundtrip_on_real_campaign():
    from repro.config import CSnakeConfig
    from repro.core import CSnake
    from repro.systems import get_system

    report = CSnake(
        get_system("toy"),
        CSnakeConfig(repeats=2, delay_values_ms=(2000.0,), seed=7, budget_per_fault=2),
    ).run()
    obj = _via_json(report.to_dict())
    back = DetectionReport.from_dict(obj)
    assert back.to_dict() == report.to_dict()
    assert back.summary() == report.summary()
    assert back.detected_bugs == report.detected_bugs
    assert [c.key() for c in back.cycles] == [c.key() for c in report.cycles]


def test_report_dict_has_stable_summary_block():
    report = DetectionReport(system="toy")
    obj = report.to_dict()
    assert obj["summary"]["bugs_total"] == 0
    assert DetectionReport.from_dict(obj).system == "toy"
