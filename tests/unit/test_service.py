"""Unit tests for the campaign service core (repro.service).

Everything here runs without sockets: :class:`ManagerCore` takes an
injected clock, so lease-expiry and re-queue behaviour is tested by
advancing a counter, never by sleeping; the executor tests speak to the
core through :class:`LocalTransport`, the same in-process seam
manager-side campaigns use.
"""

import json

import pytest

from repro.config import CSnakeConfig
from repro.core.driver import ExperimentTask
from repro.errors import ReproError
from repro.instrument.plan import InjectionPlan
from repro.serialize import task_from_obj, task_to_obj
from repro.service.manager import ManagerCore, task_digest
from repro.service.remote import LocalTransport, RemoteExecutor
from repro.types import FaultKey, InjKind


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _task_obj(fault="svc.loop:DELAY", test_id="t1", seed=7, **config):
    """A minimal wire-form task; config defaults to result-affecting only."""
    cfg = {"seed": seed}
    cfg.update(config)
    return {
        "system": "toy",
        "test_id": test_id,
        "config_json": json.dumps(cfg, sort_keys=True),
        "fault": fault,
        "plans": [],
    }


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def core(clock):
    return ManagerCore(lease_ttl_s=10.0, clock=clock)


# ------------------------------------------------------------------ queue


def test_lease_complete_happy_path(core):
    agent = core.register_agent(name="a", workers=2)["agent"]
    ids = core.submit_tasks([_task_obj(test_id="t1"), _task_obj(test_id="t2")])["ids"]
    leased = core.lease(agent, max_tasks=4)["tasks"]
    assert [e["id"] for e in leased] == ids  # FIFO
    for entry in leased:
        core.complete(agent, entry["id"], result={"ok": 1})
    reply = core.poll_results(ids)
    assert sorted(reply["done"]) == sorted(ids) and not reply["pending"]
    stats = core.stats()["tasks"]
    assert stats == {
        "total": 2, "queued": 0, "leased": 0, "done": 2, "failed": 0,
        "executed": 2, "deduped": 0, "requeued": 0,
    }


def test_unknown_agent_must_reregister(core):
    with pytest.raises(ReproError):
        core.lease("agent-99")


def test_expired_lease_requeues_for_surviving_agents(core, clock):
    dying = core.register_agent(name="dying")["agent"]
    ids = core.submit_tasks([_task_obj()])["ids"]
    assert [e["id"] for e in core.lease(dying, max_tasks=1)["tasks"]] == ids
    clock.advance(11.0)  # past the 10s TTL: the reaper reclaims the lease
    survivor = core.register_agent(name="survivor")["agent"]
    reclaimed = core.lease(survivor, max_tasks=1)["tasks"]
    assert [e["id"] for e in reclaimed] == ids
    assert core.stats()["tasks"]["requeued"] == 1
    with pytest.raises(ReproError):
        core.lease(dying)  # the dead agent was forgotten entirely


def test_heartbeat_extends_lease_across_ttl(core, clock):
    agent = core.register_agent()["agent"]
    ids = core.submit_tasks([_task_obj()])["ids"]
    core.lease(agent, max_tasks=1)
    clock.advance(8.0)
    assert core.heartbeat(agent)["ok"]
    clock.advance(8.0)  # 16s total — but the beat at t=8 renewed to t=18
    assert core.complete(agent, ids[0], result={"ok": 1})["duplicate"] is False
    assert core.stats()["tasks"]["requeued"] == 0


def test_late_result_from_reaped_agent_is_first_completion_wins(core, clock):
    slow = core.register_agent(name="slow")["agent"]
    ids = core.submit_tasks([_task_obj()])["ids"]
    core.lease(slow, max_tasks=1)
    clock.advance(11.0)
    fast = core.register_agent(name="fast")["agent"]
    core.lease(fast, max_tasks=1)
    assert core.complete(fast, ids[0], result={"ok": 1})["duplicate"] is False
    # The reaped agent finishes the work it still held: deterministic
    # execution makes the race benign, and the duplicate is absorbed.
    assert core.complete(slow, ids[0], result={"ok": 1})["duplicate"] is True
    assert core.stats()["tasks"]["executed"] == 1


def test_failed_task_retries_on_fresh_submission(core):
    agent = core.register_agent()["agent"]
    ids = core.submit_tasks([_task_obj()])["ids"]
    core.lease(agent, max_tasks=1)
    core.complete(agent, ids[0], error="boom")
    assert core.poll_results(ids)["done"][ids[0]] == {"error": "boom"}
    assert core.submit_tasks([_task_obj()])["ids"] == ids
    retried = core.lease(agent, max_tasks=1)["tasks"]
    assert [e["id"] for e in retried] == ids
    core.complete(agent, ids[0], result={"ok": 1})
    assert core.poll_results(ids)["done"][ids[0]] == {"result": {"ok": 1}}


def test_poll_unknown_task_raises(core):
    with pytest.raises(ReproError):
        core.poll_results(["nope"])


# ------------------------------------------------------------------ dedup


def test_task_digest_strips_execution_only_knobs():
    base = _task_obj()
    for knob, value in (
        ("experiment_workers", 7),
        ("experiment_backend", "process"),
        ("beam_workers", 3),
        ("cache_dir", "/tmp/elsewhere"),
        ("manager_url", "http://other:1"),
    ):
        assert task_digest(_task_obj(**{knob: value})) == task_digest(base), knob
    assert task_digest(_task_obj(seed=8)) != task_digest(base)
    assert task_digest(_task_obj(fault=None)) != task_digest(base)
    assert task_digest(_task_obj(test_id="t2")) != task_digest(base)


def test_identical_submissions_share_one_queue_entry(core):
    agent = core.register_agent()["agent"]
    a = core.submit_tasks([_task_obj()])["ids"]
    b = core.submit_tasks([_task_obj(experiment_workers=5)])["ids"]
    assert a == b
    assert core.lease(agent, max_tasks=4)["tasks"] != []
    assert core.lease(agent, max_tasks=4)["tasks"] == []  # nothing left
    core.complete(agent, a[0], result={"ok": 1})
    assert core.stats()["tasks"]["total"] == 1
    assert core.stats()["tasks"]["executed"] == 1


# ------------------------------------------------------------------ codecs


def _sample_tasks():
    fault = FaultKey("svc.handle.scan", InjKind.DELAY)
    return [
        ExperimentTask("toy", "t1", '{"seed": 7}', None, ()),
        ExperimentTask(
            "toy", "t2", '{"seed": 7}', fault,
            (InjectionPlan(fault, delay_ms=500.0, warmup_ms=1000.0),),
        ),
        ExperimentTask(
            "toy", "t3", '{"seed": 9}',
            FaultKey("env.link.a~b", InjKind("msg_drop")),
            (InjectionPlan(
                FaultKey("env.link.a~b", InjKind("msg_drop")),
                params=(("drop_p", 0.3),),
            ),),
        ),
    ]


@pytest.mark.parametrize("task", _sample_tasks(), ids=lambda t: t.test_id)
def test_task_wire_roundtrip(task):
    obj = task_to_obj(task)
    assert json.loads(json.dumps(obj)) == obj  # JSON-clean
    assert task_from_obj(obj) == task
    assert task_digest(obj) == task_digest(task_to_obj(task_from_obj(obj)))


# ---------------------------------------------------------------- executor
#
# These tests long-poll, so they run against a real-clock core (the
# injected-clock fixture would keep every poll deadline forever distant).


def test_remote_executor_rejects_adhoc_callables():
    executor = RemoteExecutor(LocalTransport(ManagerCore()))
    with pytest.raises(ReproError, match="ExperimentTask descriptors only"):
        executor.map(len, [[1], [2]])


def test_remote_executor_needs_real_fanout():
    with pytest.raises(ReproError):
        RemoteExecutor(LocalTransport(ManagerCore()), max_workers=1)


def test_remote_executor_propagates_task_errors():
    import threading

    from repro.core.driver import execute_experiment_task

    live = ManagerCore()
    executor = RemoteExecutor(LocalTransport(live), campaign=None)
    task = ExperimentTask("toy", "t1", '{"seed": 7}', None, ())

    def serve_one_error():
        agent = live.register_agent(name="err")["agent"]
        entry = live.lease(agent, max_tasks=1, wait_s=5.0)["tasks"][0]
        live.complete(agent, entry["id"], error="RuntimeError: kaboom")

    thread = threading.Thread(target=serve_one_error, daemon=True)
    thread.start()
    with pytest.raises(ReproError, match="kaboom"):
        executor.map(execute_experiment_task, [task])
    thread.join(timeout=5.0)


def test_remote_executor_timeout_without_agents(monkeypatch):
    from repro.core.driver import execute_experiment_task
    from repro.service import remote as remote_mod

    monkeypatch.setattr(remote_mod, "POLL_WAIT_S", 0.1)
    executor = RemoteExecutor(LocalTransport(ManagerCore()), timeout_s=0.2)
    task = ExperimentTask("toy", "t1", '{"seed": 7}', None, ())
    with pytest.raises(ReproError, match="stalled"):
        executor.map(execute_experiment_task, [task])
