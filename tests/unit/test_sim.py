"""Unit tests for the virtual-time simulation substrate."""

import pytest

from repro.config import SimConfig
from repro.errors import RpcTimeout
from repro.sim import Node, SimEnv


def make_env(**kwargs):
    defaults = dict(network_latency_ms=1.0, network_jitter_ms=0.0)
    defaults.update(kwargs)
    return SimEnv(SimConfig(**defaults), seed=42)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        env = make_env()
        node = Node(env, "n1")
        fired = []
        env.schedule_at(10.0, node, lambda: fired.append(("a", env.now)))
        env.schedule_at(5.0, node, lambda: fired.append(("b", env.now)))
        env.run(100.0)
        assert [name for name, _ in fired] == ["b", "a"]
        assert fired[0][1] == pytest.approx(5.0)
        assert fired[1][1] == pytest.approx(10.0)

    def test_after_is_relative_to_now(self):
        env = make_env()
        node = Node(env, "n1")
        times = []

        def first():
            env.after(node, 7.0, lambda: times.append(env.now))

        env.schedule_at(3.0, node, first)
        env.run(100.0)
        assert times == [pytest.approx(10.0)]

    def test_cancelled_event_does_not_fire(self):
        env = make_env()
        node = Node(env, "n1")
        fired = []
        ev = env.schedule_at(5.0, node, lambda: fired.append(1))
        ev.cancel()
        env.run(100.0)
        assert fired == []

    def test_every_reschedules_with_fixed_delay(self):
        env = make_env()
        node = Node(env, "n1")
        times = []
        env.every(node, 10.0, lambda: times.append(env.now))
        env.run(45.0)
        assert times == [pytest.approx(10.0), pytest.approx(20.0), pytest.approx(30.0), pytest.approx(40.0)]

    def test_run_horizon_leaves_future_events(self):
        env = make_env()
        node = Node(env, "n1")
        fired = []
        env.schedule_at(50.0, node, lambda: fired.append(1))
        env.run(10.0)
        assert fired == []
        env.run(100.0)
        assert fired == [1]


class TestBusyNode:
    def test_spin_delays_subsequent_handlers(self):
        env = make_env()
        node = Node(env, "n1")
        times = []
        env.schedule_at(1.0, node, lambda: env.spin(20.0))
        env.schedule_at(2.0, node, lambda: times.append(env.now))
        env.run(100.0)
        # The second handler cannot start before the first one's cost ends.
        assert times == [pytest.approx(21.0)]

    def test_spin_does_not_delay_other_nodes(self):
        env = make_env()
        busy = Node(env, "busy")
        idle = Node(env, "idle")
        times = []
        env.schedule_at(1.0, busy, lambda: env.spin(50.0))
        env.schedule_at(2.0, idle, lambda: times.append(env.now))
        env.run(100.0)
        assert times == [pytest.approx(2.0)]

    def test_busy_periodic_handler_falls_behind(self):
        env = make_env()
        node = Node(env, "n1")
        times = []

        def tick():
            times.append(env.now)
            env.spin(15.0)

        env.every(node, 10.0, tick)
        env.run(60.0)
        # Each firing is scheduled 10ms after the previous one *finishes*
        # (start + 15 spin), so the period stretches to 25ms.
        assert times[0] == pytest.approx(10.0)
        assert times[1] == pytest.approx(35.0)
        assert times[2] == pytest.approx(60.0)

    def test_crashed_node_skips_events(self):
        env = make_env()
        node = Node(env, "n1")
        fired = []
        env.schedule_at(5.0, node, lambda: fired.append(1))
        node.crash()
        env.run(100.0)
        assert fired == []

    def test_restart_resumes_execution(self):
        env = make_env()
        node = Node(env, "n1")
        fired = []
        node.crash()
        env.schedule_at(5.0, node, lambda: fired.append(1))
        env.schedule_at(3.0, Node(env, "other"), node.restart)
        env.run(100.0)
        assert fired == [1]


class TestRpc:
    def test_rpc_returns_value_and_advances_time(self):
        env = make_env()
        a, b = Node(env, "a"), Node(env, "b")
        out = {}

        def handler(x):
            env.spin(5.0)
            return x * 2

        def caller():
            t0 = env.now
            out["result"] = env.rpc(b, handler, 21)
            out["elapsed"] = env.now - t0

        env.schedule_at(1.0, a, caller)
        env.run(100.0)
        assert out["result"] == 42
        # 1ms latency out + 5ms service + 1ms latency back.
        assert out["elapsed"] == pytest.approx(7.0)

    def test_rpc_charges_callee_busy_time(self):
        env = make_env()
        a, b = Node(env, "a"), Node(env, "b")

        def caller():
            env.rpc(b, lambda: env.spin(30.0))

        env.schedule_at(1.0, a, caller)
        env.run(100.0)
        assert b.busy_until == pytest.approx(32.0)  # arrived at 2, spun 30

    def test_rpc_times_out_when_callee_busy(self):
        env = make_env()
        a, b = Node(env, "a"), Node(env, "b")
        b.busy_until = 500.0
        out = {}

        def caller():
            try:
                env.rpc(b, lambda: None, timeout_ms=50.0)
                out["r"] = "ok"
            except RpcTimeout:
                out["r"] = "timeout"
                out["t"] = env.now

        env.schedule_at(1.0, a, caller)
        env.run(1000.0)
        assert out["r"] == "timeout"
        assert out["t"] == pytest.approx(51.0)  # call time + timeout

    def test_rpc_times_out_when_service_too_slow(self):
        env = make_env()
        a, b = Node(env, "a"), Node(env, "b")
        out = {}

        def caller():
            try:
                env.rpc(b, lambda: env.spin(200.0), timeout_ms=50.0)
            except RpcTimeout:
                out["r"] = "timeout"

        env.schedule_at(1.0, a, caller)
        env.run(1000.0)
        assert out["r"] == "timeout"
        # The work still happened on the callee (overload semantics).
        assert b.busy_until == pytest.approx(202.0)

    def test_rpc_propagates_callee_fault(self):
        from repro.errors import IOEx

        env = make_env()
        a, b = Node(env, "a"), Node(env, "b")
        out = {}

        def bad():
            raise IOEx("boom")

        def caller():
            try:
                env.rpc(b, bad)
            except IOEx as exc:
                out["r"] = str(exc)

        env.schedule_at(1.0, a, caller)
        env.run(100.0)
        assert out["r"] == "boom"

    def test_rpc_to_partitioned_node_times_out(self):
        env = make_env()
        a, b = Node(env, "a"), Node(env, "b")
        env.partition(a, b)
        out = {}

        def caller():
            try:
                env.rpc(b, lambda: None, timeout_ms=30.0)
            except RpcTimeout:
                out["r"] = "timeout"

        env.schedule_at(1.0, a, caller)
        env.run(100.0)
        assert out["r"] == "timeout"

    def test_heal_restores_connectivity(self):
        env = make_env()
        a, b = Node(env, "a"), Node(env, "b")
        env.partition(a, b)
        env.heal(a, b)
        out = {}
        env.schedule_at(1.0, a, lambda: out.setdefault("r", env.rpc(b, lambda: "pong")))
        env.run(100.0)
        assert out["r"] == "pong"

    def test_rpc_to_crashed_node_times_out(self):
        env = make_env()
        a, b = Node(env, "a"), Node(env, "b")
        b.crash()
        out = {}

        def caller():
            try:
                env.rpc(b, lambda: None, timeout_ms=30.0)
            except RpcTimeout:
                out["r"] = "timeout"

        env.schedule_at(1.0, a, caller)
        env.run(100.0)
        assert out["r"] == "timeout"


class TestSendAndSaturation:
    def test_send_delivers_one_way_message(self):
        env = make_env()
        a, b = Node(env, "a"), Node(env, "b")
        got = []
        env.schedule_at(1.0, a, lambda: env.send(b, lambda x: got.append((x, env.now)), "hi"))
        env.run(100.0)
        assert got == [("hi", pytest.approx(2.0))]

    def test_send_dropped_across_partition(self):
        env = make_env()
        a, b = Node(env, "a"), Node(env, "b")
        env.partition(a, b)
        got = []
        env.schedule_at(1.0, a, lambda: env.send(b, got.append, "hi"))
        env.run(100.0)
        assert got == []

    def test_event_cap_sets_saturated_flag(self):
        env = make_env()
        node = Node(env, "n1")
        env.MAX_EVENTS = 100

        def recurse():
            env.after(node, 0.1, recurse)

        env.schedule_at(0.0, node, recurse)
        env.run(1e9)
        assert env.saturated
        assert env.events_processed == 100

    def test_spin_rejects_negative(self):
        env = make_env()
        with pytest.raises(ValueError):
            env.spin(-1.0)
