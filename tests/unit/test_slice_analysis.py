"""Unit tests for the code-slice analysis package (repro.analysis)."""

import ast
from pathlib import Path

import pytest

from repro.analysis import (
    GitSource,
    TreeSource,
    analyze_sources,
    diff_reports,
    diff_slices,
    module_relpath,
    resolve_provider,
)
from repro.analysis.astutil import collect_module, digest_node, strip_docstrings
from repro.analysis.callgraph import build_call_graph
from repro.analysis.cfg import build_cfg, cfg_stats
from repro.instrument.sites import FaultSite
from repro.types import FaultKey, InjKind, SiteKind

MOD_A = '''\
from demo.b import Helper, util


class Service:
    def __init__(self, rt):
        self.rt = rt
        self.helper = Helper()

    def handle(self, n):
        """Process n items through the instrumented scan loop."""
        # the loop hook names the site via its first literal argument
        for item in self.rt.loop("svc.handle.scan", range(n)):
            self.step(item)
        return n

    def step(self, item):
        if self.rt.branch("svc.step.is_big", item > 2):
            util(item)

    def retired(self):
        return 0
        util(99)

    def shared_one(self):
        self.rt.detector("svc.shared.check", True)

    def shared_two(self):
        self.rt.detector("svc.shared.check", False)


def register(env, svc):
    env.every(svc, 10, svc.handle)
'''

MOD_B = '''\
class Helper:
    def __init__(self):
        self.count = 0


def util(x):
    return x + 1
'''

SOURCES = {"demo.a": MOD_A, "demo.b": MOD_B}


def site(site_id, kind, function):
    return FaultSite(site_id=site_id, kind=kind, system="demo", function=function)


SITES = [
    site("svc.handle.scan", SiteKind.LOOP, "Service.handle"),
    site("svc.step.is_big", SiteKind.BRANCH, "Service.step"),
    site("svc.retired.op", SiteKind.DETECTOR, "Service.retired"),
    site("svc.shared.check", SiteKind.DETECTOR, "Service.shared_one"),
    site("svc.ghost", SiteKind.DETECTOR, "Service.vanished"),
    site("env.node.0", SiteKind.ENV_NODE, "<environment>"),
]

ENTRIES = {"t-basic": "demo.a:register"}


@pytest.fixture()
def analysis():
    return analyze_sources("demo", SOURCES, SITES, ENTRIES)


# ---------------------------------------------------------------- astutil


def test_collect_module_function_keys_and_classes():
    info = collect_module("demo.a", MOD_A)
    assert set(info.functions) == {
        "demo.a:Service.__init__",
        "demo.a:Service.handle",
        "demo.a:Service.step",
        "demo.a:Service.retired",
        "demo.a:Service.shared_one",
        "demo.a:Service.shared_two",
        "demo.a:register",
    }
    assert set(info.classes) == {"demo.a:Service"}
    assert info.classes["demo.a:Service"].methods["handle"] == "demo.a:Service.handle"


def test_collect_module_site_literals_bound_to_runtime_receiver():
    info = collect_module("demo.a", MOD_A)
    assert info.functions["demo.a:Service.handle"].site_literals == ("svc.handle.scan",)
    assert info.functions["demo.a:Service.step"].site_literals == ("svc.step.is_big",)
    # declaration-style receivers (reg.loop(...)) are not runtime hooks
    decl = collect_module("demo.reg", 'def build(reg):\n    reg.loop("a.b", "F.g")\n')
    assert decl.functions["demo.reg:build"].site_literals == ()


def test_collect_module_import_map():
    info = collect_module("demo.a", MOD_A)
    assert info.imports["Helper"] == ("demo.b", "Helper")
    assert info.imports["util"] == ("demo.b", "util")


def test_collect_module_resolves_relative_imports():
    info = collect_module("pkg.sub.mod", "from ..core import thing\n")
    assert info.imports["thing"] == ("pkg.core", "thing")


def test_digest_ignores_docstrings_and_comments():
    fn = ast.parse("def f():\n    'doc'\n    return 1\n").body[0]
    fn2 = ast.parse("def f():\n    # comment\n    return 1\n").body[0]
    fn3 = ast.parse("def f():\n\n\n    return   1\n").body[0]
    assert digest_node(fn) == digest_node(fn2) == digest_node(fn3)


def test_digest_changes_on_executable_edit():
    fn = ast.parse("def f():\n    return 1\n").body[0]
    fn2 = ast.parse("def f():\n    return 2\n").body[0]
    assert digest_node(fn) != digest_node(fn2)


def test_strip_docstrings_leaves_a_nonempty_body():
    fn = ast.parse("def f():\n    'only a docstring'\n").body[0]
    stripped = strip_docstrings(fn)
    assert len(stripped.body) == 1  # placeholder, not an empty (invalid) body


# -------------------------------------------------------------------- cfg


def _fn(source):
    return ast.parse(source).body[0]


def test_cfg_marks_code_after_return_dead():
    cfg = build_cfg(_fn("def f():\n    return 1\n    helper()\n"))
    dead = [
        stmt
        for block in cfg.blocks
        if block.index not in cfg.reachable_blocks
        for stmt in block.statements
    ]
    assert any(isinstance(s, ast.Expr) for s in dead)
    live = cfg.reachable_statements()
    assert all(not isinstance(s, ast.Expr) for s in live)


def _live_stmts(cfg):
    return cfg.reachable_statements()


def test_cfg_loop_has_back_edge_and_exit_edge():
    cfg = build_cfg(_fn("def f(xs):\n    for x in xs:\n        x + 1\n    return 0\n"))
    # loop body and the statement after the loop are both live
    assert len(_live_stmts(cfg)) == 3  # for, body expr, return
    has_back_edge = any(
        succ < block.index for block in cfg.blocks for succ in block.successors
    )
    assert has_back_edge


def test_cfg_if_false_branch_still_live():
    # no constant folding: ``if False:`` bodies still count as live
    cfg = build_cfg(_fn("def f():\n    if False:\n        helper()\n    return 0\n"))
    assert len(_live_stmts(cfg)) == 3  # if, call, return


def test_cfg_stats_counts_dead_blocks():
    cfgs = {
        "k": build_cfg(_fn("def f():\n    return 1\n    helper()\n")),
    }
    stats = cfg_stats(cfgs)
    assert stats["dead_blocks"] >= 1
    assert stats["cfg_blocks"] > stats["dead_blocks"]


# -------------------------------------------------------------- call graph


def _graph():
    modules = {name: collect_module(name, src) for name, src in SOURCES.items()}
    return build_call_graph(modules)


def test_call_graph_resolves_self_method_and_import():
    graph = _graph()
    assert "demo.a:Service.step" in graph.edges["demo.a:Service.handle"]
    assert "demo.b:util" in graph.edges["demo.a:Service.step"]


def test_call_graph_resolves_constructor_across_modules():
    graph = _graph()
    assert "demo.b:Helper.__init__" in graph.edges["demo.a:Service.__init__"]


def test_call_graph_resolves_callback_arguments():
    # env.every(svc, 10, svc.handle) registers handle by reference
    graph = _graph()
    assert "demo.a:Service.handle" in graph.edges["demo.a:register"]


def test_call_graph_skips_statically_dead_calls():
    # util(99) sits after an unconditional return
    graph = _graph()
    assert graph.edges["demo.a:Service.retired"] == ()


def test_call_graph_resolves_nested_functions():
    src = "def outer():\n    def inner():\n        return 1\n    return inner()\n"
    modules = {"demo.n": collect_module("demo.n", src)}
    graph = build_call_graph(modules)
    assert "demo.n:outer.<locals>.inner" in graph.edges["demo.n:outer"]


def test_reachable_from_is_a_transitive_closure():
    graph = _graph()
    closure = graph.reachable_from(["demo.a:Service.handle"])
    assert {"demo.a:Service.handle", "demo.a:Service.step", "demo.b:util"} <= closure
    assert "demo.a:Service.retired" not in closure


# ------------------------------------------------------------------ slicer


def test_slicer_binds_sites_by_literal(analysis):
    assert analysis.site_roots["svc.handle.scan"] == ("demo.a:Service.handle",)
    assert set(analysis.site_slices["svc.handle.scan"]) == {
        "demo.a:Service.handle",
        "demo.a:Service.step",
        "demo.b:util",
    }


def test_slicer_falls_back_to_declared_qualname(analysis):
    # svc.retired.op's literal never appears; the declared function does
    assert analysis.site_roots["svc.retired.op"] == ("demo.a:Service.retired",)


def test_slicer_unions_multi_root_literals(analysis):
    assert analysis.site_roots["svc.shared.check"] == (
        "demo.a:Service.shared_one",
        "demo.a:Service.shared_two",
    )
    assert set(analysis.site_slices["svc.shared.check"]) == {
        "demo.a:Service.shared_one",
        "demo.a:Service.shared_two",
    }


def test_slicer_reports_unresolved_sites(analysis):
    assert "svc.ghost" in analysis.unresolved
    assert "not in source" in analysis.unresolved["svc.ghost"]
    assert "svc.ghost" not in analysis.site_digests


def test_slicer_keys_env_sites_on_whole_source(analysis):
    assert analysis.env_sites == ("env.node.0",)
    assert analysis.site_digests["env.node.0"] == analysis.source_digest


def test_slicer_entry_points_and_reachability(analysis):
    assert analysis.entry_function["t-basic"] == "demo.a:register"
    assert analysis.reachability_trusted
    assert analysis.is_reachable("svc.handle.scan")
    # retired() has no callers from the entry point
    assert not analysis.is_reachable("svc.retired.op")
    # unresolved sites are never pruned
    assert analysis.is_reachable("svc.ghost")


def test_slicer_distrusts_reachability_on_unresolved_entry():
    analysis = analyze_sources(
        "demo", SOURCES, SITES, {"t-basic": "demo.a:register", "t-gone": "demo.a:missing"}
    )
    assert not analysis.reachability_trusted
    assert analysis.is_reachable("svc.retired.op")  # conservative


def test_slicer_digest_stable_under_comment_edit():
    edited = dict(SOURCES)
    edited["demo.a"] = MOD_A.replace(
        '"""Process n items through the instrumented scan loop."""',
        "# rewritten as a comment",
    )
    base = analyze_sources("demo", SOURCES, SITES, ENTRIES)
    after = analyze_sources("demo", edited, SITES, ENTRIES)
    assert after.site_digests == base.site_digests
    assert after.entry_digests == base.entry_digests


def test_slicer_digest_changes_only_for_affected_slices():
    edited = dict(SOURCES)
    edited["demo.b"] = MOD_B.replace("return x + 1", "return x + 2")
    base = analyze_sources("demo", SOURCES, SITES, ENTRIES)
    after = analyze_sources("demo", edited, SITES, ENTRIES)
    # util is in handle's and step's slices but not in retired's closure
    # (retired's call to util is statically dead) or shared_*'s
    assert after.site_digests["svc.handle.scan"] != base.site_digests["svc.handle.scan"]
    assert after.site_digests["svc.step.is_big"] != base.site_digests["svc.step.is_big"]
    assert after.site_digests["svc.shared.check"] == base.site_digests["svc.shared.check"]
    # env sites ride the whole-source digest: any edit invalidates them
    assert after.site_digests["env.node.0"] != base.site_digests["env.node.0"]


def test_slicer_is_deterministic():
    a = analyze_sources("demo", SOURCES, SITES, ENTRIES)
    b = analyze_sources("demo", dict(reversed(list(SOURCES.items()))), SITES, ENTRIES)
    assert a.site_digests == b.site_digests
    assert a.source_digest == b.source_digest


def test_slicer_stats_are_scalars(analysis):
    stats = analysis.stats()
    assert stats["sites_resolved"] == 4
    assert stats["sites_env"] == 1
    assert stats["sites_unresolved"] == 1
    assert stats["entries_resolved"] == 1
    assert stats["reachability_trusted"] is True
    assert all(
        isinstance(v, (int, float, bool)) for v in stats.values()
    ), stats


# ------------------------------------------------------------------ source


def test_module_relpath():
    assert module_relpath("repro.systems.miniraft.nodes") == (
        "src/repro/systems/miniraft/nodes.py"
    )


def test_tree_source_reads_src_and_bare_layouts(tmp_path):
    src_layout = tmp_path / "a"
    (src_layout / "src" / "demo").mkdir(parents=True)
    (src_layout / "src" / "demo" / "m.py").write_text("X = 1\n")
    assert TreeSource(src_layout).read("demo.m") == "X = 1\n"

    bare_layout = tmp_path / "b"
    (bare_layout / "demo").mkdir(parents=True)
    (bare_layout / "demo" / "m.py").write_text("X = 2\n")
    assert TreeSource(bare_layout).read("demo.m") == "X = 2\n"

    with pytest.raises(FileNotFoundError):
        TreeSource(src_layout).read("demo.absent")


def test_git_source_reads_committed_modules():
    repo = Path(__file__).resolve().parents[2]
    git = GitSource("HEAD", repo=repo)
    if not git.exists():  # pragma: no cover - sdist without .git
        pytest.skip("not running from a git checkout")
    text = git.read("repro.types")
    assert "class SiteKind" in text
    with pytest.raises(FileNotFoundError):
        git.read("repro.no_such_module")


def test_resolve_provider_prefers_directories(tmp_path):
    provider = resolve_provider(str(tmp_path))
    assert isinstance(provider, TreeSource)
    with pytest.raises(ValueError):
        resolve_provider("definitely-not-a-ref-or-dir", repo=tmp_path)


# -------------------------------------------------------------------- diff


def test_diff_slices_classifies_sites_and_functions():
    edited = dict(SOURCES)
    edited["demo.b"] = MOD_B.replace("return x + 1", "return x + 2")
    old = analyze_sources("demo", SOURCES, SITES, ENTRIES)
    new = analyze_sources("demo", edited, SITES, ENTRIES)
    diff = diff_slices(old, new)
    assert diff.source_changed
    assert "svc.handle.scan" in diff.changed_sites
    assert "svc.shared.check" in diff.unchanged_sites
    assert "svc.ghost" in diff.unresolved_sites
    assert diff.changed_functions == ("demo.b:util",)
    assert diff.added_functions == () and diff.removed_functions == ()
    assert "t-basic" in diff.changed_entries  # register -> handle -> step -> util


def test_diff_slices_on_identical_sources_is_empty():
    old = analyze_sources("demo", SOURCES, SITES, ENTRIES)
    new = analyze_sources("demo", dict(SOURCES), SITES, ENTRIES)
    diff = diff_slices(old, new)
    assert not diff.source_changed
    assert diff.changed_sites == () and diff.changed_entries == ()


def test_diff_partition_faults_conservatively_invalidates_unresolved():
    edited = dict(SOURCES)
    edited["demo.a"] = MOD_A.replace("item > 2", "item > 3")
    old = analyze_sources("demo", SOURCES, SITES, ENTRIES)
    new = analyze_sources("demo", edited, SITES, ENTRIES)
    diff = diff_slices(old, new)
    faults = [
        FaultKey("svc.step.is_big", InjKind.NEGATION),
        FaultKey("svc.shared.check", InjKind.NEGATION),
        FaultKey("svc.ghost", InjKind.NEGATION),
    ]
    invalidated, reusable = diff.partition_faults(faults)
    assert {f.site_id for f in invalidated} == {"svc.step.is_big", "svc.ghost"}
    assert {f.site_id for f in reusable} == {"svc.shared.check"}


def _report(cycle_edges, bugs):
    return {
        "cycles": [
            {"edges": [{"src": s, "etype": e, "dst": d, "test_id": t} for s, e, d, t in edges]}
            for edges in cycle_edges
        ],
        "bug_matches": [{"bug": {"bug_id": b}, "detected": True} for b in bugs],
        "summary": {"bugs_detected": len(bugs)},
    }


def test_diff_reports_spots_appeared_and_vanished_loops():
    old = _report([[("A", "SP_I", "B", "t1")]], ["BUG-1"])
    new = _report([[("A", "SP_I", "C", "t1")]], ["BUG-1", "BUG-2"])
    diff = diff_reports(old, new)
    assert not diff.identical
    assert len(diff.appeared_loops) == 1 and "C" in diff.appeared_loops[0]
    assert len(diff.vanished_loops) == 1 and "B" in diff.vanished_loops[0]
    assert diff.appeared_bugs == ("BUG-2",) and diff.vanished_bugs == ()


def test_diff_reports_identical_ignores_recorded_state_noise():
    old = _report([[("A", "SP_I", "B", "t1")]], ["BUG-1"])
    new = _report([[("A", "SP_I", "B", "t1")]], ["BUG-1"])
    new["cycles"][0]["edges"][0]["src_states"] = [["x", "y"]]  # state noise
    diff = diff_reports(old, new)
    assert diff.identical
    assert diff.to_obj()["identical"] is True


# ------------------------------------------------------- bundled systems


@pytest.mark.parametrize("name", ["minihdfs2", "minihdfs3"])
def test_minihdfs_cache_entries_key_on_slice_digests(name, tmp_path):
    """The PR-6 follow-up contract: with ``source_modules`` declared, the
    MiniHDFS specs' cache entries key on per-site slice digests — never
    the whole-spec fallback.  Every analyzer-selected fault site and
    every workload entry point must resolve; the only unresolved sites
    are ones the static analyzer filters out of the fault space anyway
    (metrics, test-only, reflection)."""
    from repro.cache import ExperimentCache
    from repro.config import CSnakeConfig
    from repro.instrument.analyzer import analyze
    from repro.systems import get_system

    spec = get_system(name)
    slices = spec.slice_analysis()
    assert slices is not None, "source_modules undeclared"
    selected = {f.site_id for f in analyze(spec.registry, slices=slices).faults}
    assert selected - set(slices.site_digests) == set()
    assert set(spec.workload_ids()) - set(slices.entry_digests) == set()
    assert not (selected & set(slices.unresolved))

    cache = ExperimentCache(tmp_path, spec, CSnakeConfig(cache_dir=str(tmp_path)))
    for site_id in sorted(selected):
        component = cache._site_slice(site_id)
        assert "reason" not in component, (site_id, component)
        assert component["digest"] == slices.site_digests[site_id]
    for test_id in spec.workload_ids():
        component = cache._entry_slice(test_id)
        assert "reason" not in component, (test_id, component)
