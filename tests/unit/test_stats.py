"""Unit tests for the one-sided t-test helper."""

import pytest

from repro.core.stats import one_sided_t_pvalue, significant_increase


def test_clear_increase_is_significant():
    assert one_sided_t_pvalue([10, 11, 12, 11, 10], [5, 6, 5, 6, 5]) < 0.01


def test_equal_samples_not_significant():
    assert one_sided_t_pvalue([5, 6, 5, 6, 5], [5, 6, 5, 6, 5]) >= 0.1


def test_decrease_not_significant():
    assert one_sided_t_pvalue([1, 2, 1, 2, 1], [9, 10, 9, 10, 9]) > 0.5


def test_constant_equal_samples_pvalue_one():
    assert one_sided_t_pvalue([3, 3, 3], [3, 3, 3]) == 1.0


def test_constant_strict_increase_pvalue_zero():
    # Deterministic counterfactual runs: identical seeds, counts constant.
    assert one_sided_t_pvalue([7, 7, 7], [3, 3, 3]) == 0.0


def test_constant_decrease_pvalue_one():
    assert one_sided_t_pvalue([3, 3, 3], [7, 7, 7]) == 1.0


def test_too_few_samples_no_evidence():
    assert one_sided_t_pvalue([5], [1, 1, 1]) == 1.0
    assert one_sided_t_pvalue([5, 6], [1]) == 1.0
    assert one_sided_t_pvalue([], []) == 1.0


def test_one_side_constant_still_works():
    p = one_sided_t_pvalue([10, 10, 10, 10, 10], [5, 6, 5, 6, 5])
    assert p < 0.05


def test_significant_increase_uses_threshold():
    treatment = [12, 13, 12, 14, 12]
    control = [10, 11, 10, 11, 10]
    p = one_sided_t_pvalue(treatment, control)
    assert significant_increase(treatment, control, p_value=max(p * 1.5, 1e-9) if p else 0.1)
    assert not significant_increase(treatment, control, p_value=p * 0.5)


def test_significant_increase_empty_treatment_false():
    assert not significant_increase([], [1, 2, 3])


def test_noisy_equal_means_not_significant():
    a = [100, 102, 98, 101, 99]
    b = [99, 101, 100, 98, 102]
    assert one_sided_t_pvalue(a, b) > 0.1


# ---------------------------------------------------------- batched variant


def test_batch_matches_scalar_on_random_samples():
    import random

    from repro.core.stats import one_sided_t_pvalues

    rng = random.Random(42)
    treatments, controls = [], []
    for _ in range(40):
        treatments.append([rng.randint(0, 30) for _ in range(5)])
        controls.append([rng.randint(0, 30) for _ in range(5)])
    # Degenerate rows: both constant (equal, higher, lower).
    treatments += [[7, 7, 7, 7, 7], [9, 9, 9, 9, 9], [1, 1, 1, 1, 1]]
    controls += [[7, 7, 7, 7, 7], [2, 2, 2, 2, 2], [5, 5, 5, 5, 5]]
    batch = one_sided_t_pvalues(treatments, controls)
    scalar = [one_sided_t_pvalue(t, c) for t, c in zip(treatments, controls)]
    assert len(batch) == len(scalar)
    for b, s in zip(batch, scalar):
        assert b == pytest.approx(s, rel=1e-12, abs=1e-15)
    # The decision (p < 0.1) must agree exactly on every row.
    assert [b < 0.1 for b in batch] == [s < 0.1 for s in scalar]


def test_batch_empty_and_short_rows():
    from repro.core.stats import one_sided_t_pvalues

    assert one_sided_t_pvalues([], []) == []
    assert one_sided_t_pvalues([[5]], [[3]]) == [1.0]
