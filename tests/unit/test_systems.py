"""Unit tests over every mini-system: registries, workloads, ground truth."""

import pytest

from repro.core.driver import _seed_for, run_workload
from repro.instrument.analyzer import analyze
from repro.systems import available_systems, evaluation_systems, get_system
from repro.types import SiteKind

ALL_SYSTEMS = available_systems()


@pytest.fixture(scope="module")
def specs():
    return {name: get_system(name) for name in ALL_SYSTEMS}


def test_registry_lists_eight_systems():
    assert set(ALL_SYSTEMS) == {
        "toy", "minihdfs2", "minihdfs3", "minihbase", "miniflink", "miniozone",
        "miniraft", "minidfs",
    }
    # The paper-evaluation set stays the five paper targets: miniraft and
    # minidfs are extension targets and the toy system a test fixture.
    assert set(evaluation_systems()) == set(ALL_SYSTEMS) - {
        "toy", "miniraft", "minidfs",
    }


def test_unknown_system_raises():
    with pytest.raises(KeyError):
        get_system("hadoop")


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_every_system_has_workloads_and_sites(specs, name):
    spec = specs[name]
    assert len(spec.workloads) >= 4
    assert len(spec.registry) >= 9
    counts = spec.registry.counts()
    assert counts["loop"] >= 3
    assert counts["throw"] + counts["lib_call"] >= 2


@pytest.mark.parametrize("name", evaluation_systems())
def test_evaluation_systems_have_known_bugs(specs, name):
    spec = specs[name]
    assert spec.known_bugs, "%s has no ground-truth bugs" % name
    for bug in spec.known_bugs:
        assert bug.core_faults, bug.bug_id
        for fault in bug.core_faults:
            assert fault.site_id in spec.registry, (
                "%s references unknown site %s" % (bug.bug_id, fault.site_id)
            )


def test_table3_bug_counts_match_paper(specs):
    # HDFS2: 6, HDFS3: 2 (+2 duplicates), HBase: 2, Flink: 2, Ozone: 3.
    assert len(specs["minihdfs2"].known_bugs) == 6
    hdfs3_ids = [b.bug_id for b in specs["minihdfs3"].known_bugs]
    assert len([b for b in hdfs3_ids if b.startswith("H3")]) == 2
    assert len([b for b in hdfs3_ids if b.startswith("H2")]) == 2  # duplicates
    assert len(specs["minihbase"].known_bugs) == 2
    assert len(specs["miniflink"].known_bugs) == 2
    assert len(specs["miniozone"].known_bugs) == 3
    unique = set()
    for name in evaluation_systems():
        for bug in specs[name].known_bugs:
            unique.add(bug.bug_id)
    assert len(unique) == 15  # the paper's 15 distinct bugs


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_static_analyzer_yields_fault_space(specs, name):
    result = analyze(specs[name].registry)
    assert len(result.faults) >= 6
    site_ids = {f.site_id for f in result.faults}
    # Filtered sites stay out of the fault space.
    for site in specs[name].registry:
        meta = site.throw
        if meta and (meta.reflection_related or meta.security_related or meta.test_only):
            assert site.site_id not in site_ids
        if site.detector and (site.detector.final_only or site.detector.primitive_only):
            assert site.site_id not in site_ids
        if site.loop and site.loop.constant_bound:
            assert site.site_id not in site_ids


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_profile_runs_are_deterministic_and_bounded(specs, name):
    spec = specs[name]
    test_id = spec.workload_ids()[0]
    wl = spec.workloads[test_id]
    a = run_workload(spec, wl, None, _seed_for(test_id, 0, 99))
    b = run_workload(spec, wl, None, _seed_for(test_id, 0, 99))
    assert a.loop_counts == b.loop_counts
    assert not a.saturated
    assert sum(a.loop_counts.values()) > 0


@pytest.mark.parametrize("name", evaluation_systems())
def test_all_workloads_execute_cleanly(specs, name):
    spec = specs[name]
    for test_id in spec.workload_ids():
        wl = spec.workloads[test_id]
        trace = run_workload(spec, wl, None, _seed_for(test_id, 0, 42))
        assert not trace.saturated, "%s profile saturated" % test_id
        assert trace.reached, test_id


@pytest.mark.parametrize("name", evaluation_systems())
def test_bug_core_faults_reachable_somewhere(specs, name):
    """Every ground-truth fault location is reached by at least one test."""
    spec = specs[name]
    reached = set()
    for test_id in spec.workload_ids():
        wl = spec.workloads[test_id]
        trace = run_workload(spec, wl, None, _seed_for(test_id, 0, 7))
        reached |= trace.reached
    for bug in spec.known_bugs:
        for fault in bug.core_faults:
            assert fault.site_id in reached, (
                "%s: core fault %s unreachable" % (bug.bug_id, fault.site_id)
            )


def test_nested_loop_declarations_consistent(specs):
    for name in ALL_SYSTEMS:
        reg = specs[name].registry
        for site in reg.loops():
            if site.loop and site.loop.parent:
                parent = reg.get(site.loop.parent)
                assert parent.kind is SiteKind.LOOP
