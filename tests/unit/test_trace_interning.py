"""Interned trace recording must be observationally identical to the
string-keyed (seed) recording path.

An unbound ``RunTrace`` still records into string-keyed dict/set/Counter
structures — exactly the seed implementation.  A trace bound to a
``SiteInterner`` records into flat arrays.  Feeding both the same event
sequence must yield equal queries, equal views, and byte-identical
serialization.
"""

import json

import pytest

from repro.core.driver import _seed_for, run_workload
from repro.instrument.sites import SiteRegistry
from repro.instrument.trace import FaultEvent, RunTrace
from repro.serialize import trace_from_obj, trace_to_obj
from repro.systems import get_system
from repro.types import FaultKey, InjKind, LocalState


@pytest.fixture
def registry():
    reg = SiteRegistry("t")
    reg.loop("t.outer", "F.run")
    reg.loop("t.inner", "F.run", parent="t.outer")
    reg.throw("t.ioe", "F.run")
    reg.detector("t.check", "F.check")
    reg.branch("t.cond", "F.run")
    return reg


def _state(stack=("f1", "f0"), branches=()):
    return LocalState(call_stack=stack, branch_trace=branches)


def _record_sequence(trace: RunTrace) -> None:
    """The same mixed recording sequence, against either storage mode."""
    exc = FaultKey("t.ioe", InjKind.EXCEPTION)
    trace.record_event(FaultEvent(exc, 10.0, _state(), injected=False))
    trace.record_event(FaultEvent(exc, 20.0, _state(("g1", "g0")), injected=True))
    for rep in range(5):
        trace.record_loop_iteration("t.outer", _state(branches=(("t.cond", True),)))
        trace.record_loop_iteration("t.inner", _state())
    trace.record_loop_iteration("t.inner", None)
    # A site the registry does not know falls back to string storage.
    trace.record_loop_iteration("t.unregistered", _state())
    trace.mark_reached("t.check")
    trace.branches_recorded = 7


@pytest.fixture
def traces(registry):
    unbound = RunTrace(test_id="t1", seed=3)
    interned = RunTrace(test_id="t1", seed=3, interner=registry.interner())
    _record_sequence(unbound)
    _record_sequence(interned)
    return unbound, interned


def test_views_identical(traces):
    unbound, interned = traces
    assert interned.loop_counts == unbound.loop_counts
    assert interned.loop_states == unbound.loop_states
    assert interned.reached == unbound.reached
    assert interned.loop_sites() == unbound.loop_sites()


def test_queries_identical(traces):
    unbound, interned = traces
    exc = FaultKey("t.ioe", InjKind.EXCEPTION)
    assert interned.natural_faults() == unbound.natural_faults()
    assert interned.states_of(exc) == unbound.states_of(exc)
    assert interned.states_of(exc, natural_only=False) == unbound.states_of(
        exc, natural_only=False
    )
    for site in ("t.outer", "t.inner", "t.unregistered", "t.ioe"):
        assert interned.loop_count(site) == unbound.loop_count(site)
        assert interned.loop_states_at(site) == unbound.loop_states_at(site)
        assert interned.was_reached(site) == unbound.was_reached(site)


def test_content_equality_across_modes(traces):
    unbound, interned = traces
    assert interned == unbound


def test_serialization_byte_identical(traces):
    unbound, interned = traces
    a = json.dumps(trace_to_obj(unbound), sort_keys=True)
    b = json.dumps(trace_to_obj(interned), sort_keys=True)
    assert a == b


def test_round_trip_from_obj(traces):
    _, interned = traces
    back = trace_from_obj(trace_to_obj(interned))
    assert back.interner is None  # deserialized traces are string-keyed
    assert back == interned
    assert trace_to_obj(back) == trace_to_obj(interned)


def test_bind_interner_migrates_recorded_data(registry):
    trace = RunTrace(test_id="t1")
    _record_sequence(trace)
    before = (dict(trace.loop_counts), set(trace.reached), trace.loop_states)
    trace.bind_interner(registry.interner())
    assert trace.interner is registry.interner()
    assert dict(trace.loop_counts) == before[0]
    assert set(trace.reached) == before[1]
    assert trace.loop_states == before[2]


def test_workload_trace_round_trip():
    """A real simulated run must survive serialize round-trip unchanged."""
    spec = get_system("toy")
    test_id = spec.workload_ids()[0]
    workload = spec.workloads[test_id]
    trace = run_workload(spec, workload, None, _seed_for(test_id, 0, 7))
    assert trace.interner is not None  # the driver records interned
    back = trace_from_obj(trace_to_obj(trace))
    assert back == trace
    assert back.natural_faults() == trace.natural_faults()
    assert sorted(back.loop_counts.items()) == sorted(trace.loop_counts.items())
    assert back.reached == trace.reached
    assert json.dumps(trace_to_obj(back), sort_keys=True) == json.dumps(
        trace_to_obj(trace), sort_keys=True
    )


def test_interner_pickles():
    import pickle

    spec = get_system("toy")
    interner = spec.registry.interner()
    clone = pickle.loads(pickle.dumps(interner))
    assert clone == interner
    assert clone.names() == interner.names()
    assert clone.index(interner.name(0)) == 0


def test_interned_trace_pickles():
    import pickle

    spec = get_system("toy")
    test_id = spec.workload_ids()[0]
    trace = run_workload(spec, spec.workloads[test_id], None, _seed_for(test_id, 0, 7))
    clone = pickle.loads(pickle.dumps(trace))
    assert clone == trace
