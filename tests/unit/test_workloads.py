"""Direct unit tests for the workload-suite entry points.

The workload modules were previously exercised only indirectly through
``test_systems.py`` campaigns; these tests pin their public contracts:
every entry point returns a well-formed, uniquely-identified, prefixed
``WorkloadSpec`` list whose setups actually build a cluster on the
simulator.
"""

import pytest

from repro.instrument.runtime import Runtime
from repro.instrument.trace import RunTrace
from repro.sim import SimEnv
from repro.systems import get_system
from repro.systems.base import WorkloadSpec
from repro.workloads.dfs import dfs_workloads
from repro.workloads.flink import flink_workloads
from repro.workloads.hbase import hbase_workloads
from repro.workloads.hdfs import hdfs_workloads
from repro.workloads.ozone import ozone_workloads
from repro.workloads.raft import raft_workloads

SUITES = {
    "hdfs2": (lambda: hdfs_workloads(2), "hdfs2", "minihdfs2"),
    "hdfs3": (lambda: hdfs_workloads(3), "hdfs3", "minihdfs3"),
    "hbase": (hbase_workloads, "hbase", "minihbase"),
    "flink": (flink_workloads, "flink", "miniflink"),
    "ozone": (ozone_workloads, "ozone", "miniozone"),
    "raft": (raft_workloads, "raft", "miniraft"),
    "dfs": (dfs_workloads, "dfs", "minidfs"),
}


@pytest.mark.parametrize("suite", sorted(SUITES))
def test_entry_point_returns_wellformed_specs(suite):
    build, prefix, _system = SUITES[suite]
    specs = build()
    assert len(specs) >= 4
    ids = [spec.test_id for spec in specs]
    assert len(set(ids)) == len(ids), "duplicate workload ids"
    for spec in specs:
        assert isinstance(spec, WorkloadSpec)
        assert spec.test_id.startswith(prefix + "."), spec.test_id
        assert spec.description.strip(), spec.test_id
        assert callable(spec.setup)
        assert spec.duration_ms > 0


@pytest.mark.parametrize("suite", sorted(SUITES))
def test_entry_point_matches_registered_system(suite):
    """The system spec ships exactly the suite the entry point returns."""
    build, _prefix, system = SUITES[suite]
    assert sorted(s.test_id for s in build()) == get_system(system).workload_ids()


@pytest.mark.parametrize("suite", sorted(SUITES))
def test_setups_build_a_live_cluster(suite):
    """Each suite's first workload schedules real work on the simulator.

    A short horizon keeps this cheap: the full-duration behaviour is
    covered by the campaign tests in ``test_systems.py``.
    """
    build, _prefix, system = SUITES[suite]
    spec = build()[0]
    registry = get_system(system).registry
    trace = RunTrace(test_id=spec.test_id)
    runtime = Runtime(registry, trace=trace)
    env = SimEnv(spec.sim_config, seed=7)
    env.runtime = runtime
    runtime.bind_env(env)
    spec.setup(env, runtime)
    assert env.nodes, "setup registered no nodes"
    env.run(10_000.0)
    assert env.events_processed > 0
    assert trace.reached, "no instrumented site reached in 10s of virtual time"
