"""Per-workload site-coverage contracts for the MiniDFS suite.

The campaign's phase-one allocation anchors every environment
disturbance on the highest-coverage workload, and the designated
feedback paths only fire on workloads that reach their sites — so the
coverage *shape* of the suite is load-bearing, not incidental.  These
tests pin it: which drill reaches which subsystem, which workload is the
unique coverage maximum, and which sites are error-path-only.
"""

import pytest

from repro.core.driver import _seed_for, run_workload
from repro.systems import get_system

#: Sites every workload reaches: client traffic, the write pipeline, the
#: heartbeat/report/registration plane, and the liveness detectors.
BASE = {
    "cli.alloc.rpc", "cli.data.rpc", "cli.ops.submit",
    "dn.pipe.write", "dn.pipe.recv", "dn.pipe.rpc", "dn.disk.full_ioe",
    "dn.hb.rpc", "dn.ibr.build", "dn.report.build", "dn.reg.rpc",
    "nn.report.blocks", "nn.write.not_master",
    "dn.master.is_down", "nn.dn.is_dead",
    "dfs.sec.acl_check", "dn.conf.is_cached", "nn.metrics.flush",
}

#: Sites only the re-replication drills reach (liveness-driven recovery).
REREPL = {"nn.rerepl.scan", "nn.rerepl.rpc", "dn.serve.rpc", "nn.block.is_under"}

#: Sites only the failover drill reaches (promotion + namespace rebuild).
FAILOVER = {"fo.report.rpc", "fo.rebuild.entries"}

#: Sites only the churn drill reaches (explicit-ack transfer mode: the
#: batched ack flush, the overdue-ack scan, and the retry path the
#: flush-cadence/ack-timeout mismatch keeps naturally warm).
ACK = {"dn.ack.build", "nn.ack.scan", "nn.retry.rpc"}

#: Error-path branches (and one dead function): never reached by any
#: fault-free profile run — they exist for injections to steer.
ERROR_ONLY = {
    "dn.hb.b_rereg", "fo.b_promote", "nn.rerepl.b_rescan", "nn.ack.b_panic",
    "nn.fsck.scan",
}


@pytest.fixture(scope="module")
def reached():
    spec = get_system("minidfs")
    out = {}
    for test_id in spec.workload_ids():
        wl = spec.workloads[test_id]
        out[test_id] = run_workload(spec, wl, None, _seed_for(test_id, 0, 7)).reached
    return out


def test_every_workload_covers_the_common_plane(reached):
    for test_id, sites in reached.items():
        missing = BASE - sites
        # The pure-ingest workload has no read traffic.
        if test_id == "dfs.write":
            missing -= {"cli.read.rpc", "dn.read.chunks"}
        assert not missing, (test_id, sorted(missing))


def test_drills_own_their_subsystems(reached):
    for test_id, sites in reached.items():
        assert (test_id in ("dfs.replicate", "dfs.churn")) == bool(REREPL & sites), test_id
        assert (test_id == "dfs.failover") == bool(FAILOVER & sites), test_id
        assert (test_id == "dfs.churn") == bool(ACK & sites), test_id
        if test_id == "dfs.churn":
            assert ACK <= sites, sorted(ACK - sites)


def test_churn_is_the_unique_coverage_maximum(reached):
    """Phase-one allocation sends every environment disturbance to the
    highest-coverage workload; DFS-3 needs that to be the churn drill
    (the only place the re-replication loop can respond to membership
    churn).  A coverage tie or a new maximum breaks campaign detection
    long before any assertion here would look related — so pin it."""
    counts = {test_id: len(sites) for test_id, sites in reached.items()}
    top = max(counts, key=lambda t: (counts[t], t))
    assert top == "dfs.churn", counts
    runner_up = max(v for t, v in counts.items() if t != "dfs.churn")
    assert counts["dfs.churn"] > runner_up, counts


def test_error_path_sites_unreached_fault_free(reached):
    union = set().union(*reached.values())
    assert not (ERROR_ONLY & union), sorted(ERROR_ONLY & union)
    spec = get_system("minidfs")
    env_sites = {s.site_id for s in spec.registry.env_sites()}
    code_sites = {s.site_id for s in spec.registry} - env_sites
    # Everything else IS reached by some profile: no accidental dead sites.
    assert code_sites - ERROR_ONLY == union
